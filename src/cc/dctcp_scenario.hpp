// Congestion-control case study (paper §4.4, Fig. 6): DCTCP bulk transfers
// over a dumbbell with a 10G bottleneck, sweeping the ECN marking
// threshold, in three fidelity configurations:
//   protocol  — all four hosts in netsim (the common ns-3 methodology)
//   mixed     — one pair of detailed (gem5) hosts, one protocol pair
//   end2end   — all four hosts detailed (gem5 + NIC simulators)
// Host-internal behavior (stack costs, NIC serialization, CPU-queueing
// jitter) lengthens and jitters the effective RTT, so small marking
// thresholds hurt detailed hosts more — protocol-level simulation
// overestimates throughput, while mixed fidelity tracks end-to-end.
#pragma once

#include <string>

#include "hostsim/cpu.hpp"
#include "orch/instantiation.hpp"
#include "runtime/runner.hpp"

namespace splitsim::cc {

enum class DctcpMode { kProtocol, kMixed, kEndToEnd };

std::string to_string(DctcpMode m);

struct DctcpScenarioConfig {
  DctcpMode mode = DctcpMode::kEndToEnd;
  std::uint32_t marking_threshold_pkts = 65;  ///< K, the swept parameter

  int pairs = 2;  ///< paper: two hosts on each side of the bottleneck
  Bandwidth edge_bw = Bandwidth::gbps(10);
  Bandwidth bottleneck_bw = Bandwidth::gbps(10);
  SimTime edge_latency = from_us(5.0);
  SimTime bottleneck_latency = from_us(20.0);
  std::uint32_t queue_capacity_pkts = 600;

  /// Bulk transfers use segmentation-offload-like amortized stack costs.
  std::uint64_t tcp_send_instrs = 900;
  std::uint64_t tcp_recv_instrs = 1'200;
  /// NIC interrupt moderation on the detailed hosts (i40e default ITR).
  SimTime rx_intr_throttle = from_us(10.0);

  SimTime duration = from_ms(40.0);
  SimTime window_start = from_ms(10.0);

  /// Execution choices (run mode, pool workers, named partition strategy)
  /// and profiling, forwarded to the orch::Instantiation.
  orch::ExecSpec exec;
  orch::ProfileSpec profile;

  /// Deterministic fault-injection plan, forwarded to Instantiation::faults.
  orch::FaultSpec faults;

  /// Adaptive orchestration (partition=auto calibration, pooled epoch
  /// rebalancing, sync-interval tuning), forwarded to
  /// Instantiation::adaptive. Scheduling only; digests are unchanged.
  orch::AdaptiveSpec adaptive;

  /// Checkpoint/restart plan, forwarded to Instantiation::ckpt. The
  /// scenario stamps config_fp (when unset) from the family name and
  /// duration so a snapshot cannot resume a different workload.
  orch::CkptSpec ckpt;

  /// Deprecated: use exec.run_mode. A non-default value here still wins so
  /// existing callers keep working.
  runtime::RunMode run_mode = runtime::RunMode::kCoscheduled;
};

struct DctcpScenarioResult {
  /// Mean per-flow goodput of the instrumented flows (Gbps): detailed
  /// flows where present, otherwise protocol flows.
  double measured_goodput_gbps = 0.0;
  double aggregate_goodput_gbps = 0.0;
  double detailed_goodput_gbps = 0.0;  ///< 0 when no detailed pair
  double protocol_goodput_gbps = 0.0;  ///< 0 when no protocol pair
  std::uint64_t bottleneck_ecn_marks = 0;
  std::uint64_t bottleneck_drops = 0;
  std::size_t components = 0;
  double wall_seconds = 0.0;
  runtime::EventDigest digest;  ///< cross-mode determinism digest of the run
};

DctcpScenarioResult run_dctcp_scenario(const DctcpScenarioConfig& cfg);

}  // namespace splitsim::cc
