#include "cc/dctcp_scenario.hpp"

#include "hostsim/apps.hpp"
#include "netsim/apps.hpp"
#include "orch/system.hpp"

namespace splitsim::cc {

std::string to_string(DctcpMode m) {
  switch (m) {
    case DctcpMode::kProtocol:
      return "protocol(ns3)";
    case DctcpMode::kMixed:
      return "mixed-fidelity";
    case DctcpMode::kEndToEnd:
      return "end-to-end";
  }
  return "?";
}

DctcpScenarioResult run_dctcp_scenario(const DctcpScenarioConfig& cfg) {
  runtime::Simulation sim;
  orch::System sys;
  orch::Instantiation inst;
  inst.exec = orch::resolve_exec(cfg.exec, cfg.run_mode);
  inst.profile = cfg.profile;
  inst.faults = cfg.faults;
  inst.adaptive = cfg.adaptive;
  inst.ckpt = cfg.ckpt;
  if (inst.ckpt.enabled() && inst.ckpt.config_fp == 0) {
    inst.ckpt.config_fp = orch::ckpt_fingerprint("dctcp", cfg.duration);
  }

  int external_pairs = cfg.mode == DctcpMode::kEndToEnd ? cfg.pairs
                       : cfg.mode == DctcpMode::kMixed  ? 1
                                                        : 0;

  proto::TcpConfig tcp;
  tcp.cc = proto::CcAlgo::kDctcp;

  std::vector<netsim::TcpSinkApp*> proto_sinks;
  std::vector<hostsim::HostTcpSinkApp*> det_sinks;

  // Dumbbell: the bottleneck link is added first so device 0 on swL is the
  // bottleneck (its queue carries the ECN-marking stats below). ECN marking
  // only on the bottleneck queue; edge queues stay default drop-tail, which
  // is fine: they never congest (standard DCTCP switch configuration).
  netsim::QueueConfig bq;
  bq.capacity_pkts = cfg.queue_capacity_pkts;
  bq.ecn_enabled = true;
  bq.ecn_threshold_pkts = cfg.marking_threshold_pkts;
  int swl = sys.add_switch({.name = "swL"});
  int swr = sys.add_switch({.name = "swR"});
  sys.add_link(swl, swr,
               {.bw = cfg.bottleneck_bw, .latency = cfg.bottleneck_latency, .queue = bq});

  orch::LinkSpec edge{.bw = cfg.edge_bw, .latency = cfg.edge_latency};
  for (int i = 0; i < cfg.pairs; ++i) {
    bool detailed = i < external_pairs;
    std::string ln = "hL" + std::to_string(i);
    std::string rn = "hR" + std::to_string(i);
    proto::Ipv4Addr rip = proto::ip(10, 2, 0, static_cast<unsigned>(i + 1));

    orch::HostSpec snd;
    snd.name = ln;
    snd.ip = proto::ip(10, 1, 0, static_cast<unsigned>(i + 1));
    snd.seed = static_cast<std::uint64_t>(100 + i);
    snd.apps = [tcp, rip, i](orch::HostContext& ctx) {
      if (ctx.is_detailed()) {
        ctx.detailed->add_app<hostsim::HostBulkSenderApp>(hostsim::HostBulkSenderApp::Config{
            .dst = rip, .dst_port = 5001, .tcp = tcp, .start_at = from_us(10.0 * i)});
      } else {
        ctx.protocol->add_app<netsim::BulkSenderApp>(netsim::BulkSenderApp::Config{
            .dst = rip, .dst_port = 5001, .tcp = tcp, .start_at = from_us(10.0 * i)});
      }
    };

    orch::HostSpec rcv;
    rcv.name = rn;
    rcv.ip = rip;
    rcv.seed = static_cast<std::uint64_t>(200 + i);
    rcv.apps = [&cfg, tcp, &proto_sinks, &det_sinks](orch::HostContext& ctx) {
      if (ctx.is_detailed()) {
        det_sinks.push_back(&ctx.detailed->add_app<hostsim::HostTcpSinkApp>(
            hostsim::HostTcpSinkApp::Config{.port = 5001,
                                            .tcp = tcp,
                                            .window_start = cfg.window_start,
                                            .window_end = cfg.duration}));
      } else {
        proto_sinks.push_back(&ctx.protocol->add_app<netsim::TcpSinkApp>(
            netsim::TcpSinkApp::Config{.port = 5001,
                                       .tcp = tcp,
                                       .window_start = cfg.window_start,
                                       .window_end = cfg.duration}));
      }
    };

    if (detailed) {
      inst.fidelity_overrides[ln] = orch::HostFidelity::kGem5;
      inst.fidelity_overrides[rn] = orch::HostFidelity::kGem5;
      // Bulk transfers use segmentation-offload-like amortized stack costs;
      // same seed scheme the pre-orch driver used for host and NIC.
      auto tune = [&cfg](hostsim::HostConfig& hc, nicsim::NicConfig& nc) {
        hc.os.tcp_send_instrs = cfg.tcp_send_instrs;
        hc.os.tcp_recv_instrs = cfg.tcp_recv_instrs;
        nc.rx_intr_throttle = cfg.rx_intr_throttle;
        nc.seed = hc.seed;
      };
      snd.tune = tune;
      rcv.tune = tune;
    }

    int lh = sys.add_host(std::move(snd));
    int rh = sys.add_host(std::move(rcv));
    sys.add_link(lh, swl, edge);
    sys.add_link(rh, swr, edge);
  }

  if (inst.exec.partition == "auto") {
    // Calibration instantiates the system once per candidate strategy; the
    // scratch installers push dead pointers into the collectors above, so
    // resolve first and reset them before the real instantiation.
    inst.exec.partition = orch::resolve_auto_partition(sys, inst, cfg.duration);
    proto_sinks.clear();
    det_sinks.clear();
  }

  auto done = orch::instantiate_system(sim, sys, inst);
  auto stats = orch::run_instantiated(sim, inst, cfg.duration);

  DctcpScenarioResult res;
  res.components = done.component_count;
  res.wall_seconds = stats.wall_seconds;
  res.digest = stats.digest;
  double det_total = 0.0, proto_total = 0.0;
  for (auto* s : det_sinks) det_total += s->window_goodput_bps();
  for (auto* s : proto_sinks) proto_total += s->window_goodput_bps();
  res.aggregate_goodput_gbps = (det_total + proto_total) / 1e9;
  if (!det_sinks.empty()) {
    res.detailed_goodput_gbps = det_total / 1e9 / static_cast<double>(det_sinks.size());
  }
  if (!proto_sinks.empty()) {
    res.protocol_goodput_gbps = proto_total / 1e9 / static_cast<double>(proto_sinks.size());
  }
  res.measured_goodput_gbps =
      det_sinks.empty() ? res.protocol_goodput_gbps : res.detailed_goodput_gbps;

  // Bottleneck statistics: left switch, device 0 is the bottleneck link.
  auto* swl_node = done.net.switches.at("swL");
  res.bottleneck_ecn_marks = swl_node->dev(0).queue().ecn_marks();
  res.bottleneck_drops = swl_node->dev(0).queue().drops();
  return res;
}

}  // namespace splitsim::cc
