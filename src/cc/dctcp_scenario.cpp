#include "cc/dctcp_scenario.hpp"

#include "hostsim/apps.hpp"
#include "hostsim/endhost.hpp"
#include "netsim/apps.hpp"
#include "netsim/topology.hpp"

namespace splitsim::cc {

std::string to_string(DctcpMode m) {
  switch (m) {
    case DctcpMode::kProtocol:
      return "protocol(ns3)";
    case DctcpMode::kMixed:
      return "mixed-fidelity";
    case DctcpMode::kEndToEnd:
      return "end-to-end";
  }
  return "?";
}

DctcpScenarioResult run_dctcp_scenario(const DctcpScenarioConfig& cfg) {
  runtime::Simulation sim;

  int external_pairs = cfg.mode == DctcpMode::kEndToEnd ? cfg.pairs
                       : cfg.mode == DctcpMode::kMixed  ? 1
                                                        : 0;
  netsim::QueueConfig bq;
  bq.capacity_pkts = cfg.queue_capacity_pkts;
  bq.ecn_enabled = true;
  bq.ecn_threshold_pkts = cfg.marking_threshold_pkts;
  netsim::Dumbbell d = netsim::make_dumbbell(cfg.pairs, cfg.edge_bw, cfg.bottleneck_bw,
                                             cfg.edge_latency, cfg.bottleneck_latency, bq,
                                             external_pairs);
  // ECN marking also on edge links (standard DCTCP switch configuration).
  // make_dumbbell applies the queue config only to the bottleneck; edge
  // queues stay default drop-tail, which is fine: they never congest.
  auto inst = netsim::instantiate(sim, d.topo);

  proto::TcpConfig tcp;
  tcp.cc = proto::CcAlgo::kDctcp;

  double win_s = to_sec(cfg.duration - cfg.window_start);
  std::vector<netsim::TcpSinkApp*> proto_sinks;
  std::vector<hostsim::HostTcpSinkApp*> det_sinks;

  for (int i = 0; i < cfg.pairs; ++i) {
    std::string ln = "hL" + std::to_string(i);
    std::string rn = "hR" + std::to_string(i);
    proto::Ipv4Addr rip = proto::ip(10, 2, 0, static_cast<unsigned>(i + 1));
    bool detailed = i < external_pairs;
    if (detailed) {
      hostsim::HostConfig hc;
      hc.cpu.model = hostsim::CpuModel::kGem5;
      hc.os.tcp_send_instrs = cfg.tcp_send_instrs;
      hc.os.tcp_recv_instrs = cfg.tcp_recv_instrs;
      nicsim::NicConfig nc;
      nc.rx_intr_throttle = cfg.rx_intr_throttle;
      hc.seed = 100 + i;
      nc.seed = 100 + i;
      auto snd = hostsim::attach_end_host(sim, inst.external_ports[ln], hc, nc);
      hc.seed = 200 + i;
      nc.seed = 200 + i;
      auto rcv = hostsim::attach_end_host(sim, inst.external_ports[rn], hc, nc);
      snd.host->add_app<hostsim::HostBulkSenderApp>(hostsim::HostBulkSenderApp::Config{
          .dst = rip, .dst_port = 5001, .tcp = tcp, .start_at = from_us(10.0 * i)});
      det_sinks.push_back(&rcv.host->add_app<hostsim::HostTcpSinkApp>(
          hostsim::HostTcpSinkApp::Config{.port = 5001,
                                          .tcp = tcp,
                                          .window_start = cfg.window_start,
                                          .window_end = cfg.duration}));
    } else {
      inst.hosts[ln]->add_app<netsim::BulkSenderApp>(netsim::BulkSenderApp::Config{
          .dst = rip, .dst_port = 5001, .tcp = tcp, .start_at = from_us(10.0 * i)});
      proto_sinks.push_back(&inst.hosts[rn]->add_app<netsim::TcpSinkApp>(
          netsim::TcpSinkApp::Config{.port = 5001,
                                     .tcp = tcp,
                                     .window_start = cfg.window_start,
                                     .window_end = cfg.duration}));
    }
  }

  auto stats = sim.run(cfg.duration, cfg.run_mode);
  (void)win_s;

  DctcpScenarioResult res;
  res.components = sim.components().size();
  res.wall_seconds = stats.wall_seconds;
  res.digest = stats.digest;
  double det_total = 0.0, proto_total = 0.0;
  for (auto* s : det_sinks) det_total += s->window_goodput_bps();
  for (auto* s : proto_sinks) proto_total += s->window_goodput_bps();
  res.aggregate_goodput_gbps = (det_total + proto_total) / 1e9;
  if (!det_sinks.empty()) {
    res.detailed_goodput_gbps = det_total / 1e9 / static_cast<double>(det_sinks.size());
  }
  if (!proto_sinks.empty()) {
    res.protocol_goodput_gbps = proto_total / 1e9 / static_cast<double>(proto_sinks.size());
  }
  res.measured_goodput_gbps =
      det_sinks.empty() ? res.protocol_goodput_gbps : res.detailed_goodput_gbps;

  // Bottleneck statistics: left switch, device 0 is the bottleneck link.
  auto* swl = inst.switches["swL"];
  res.bottleneck_ecn_marks = swl->dev(0).queue().ecn_marks();
  res.bottleneck_drops = swl->dev(0).queue().drops();
  return res;
}

}  // namespace splitsim::cc
