#include "obs/control.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/progress.hpp"

namespace splitsim::obs {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& buf, const T& v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
bool get(const std::uint8_t* data, std::size_t len, std::size_t& off, T& v) {
  if (off + sizeof(T) > len) return false;
  std::memcpy(&v, data + off, sizeof(T));
  off += sizeof(T);
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_control_update(const ControlUpdate& u) {
  std::vector<std::uint8_t> buf;
  buf.reserve(32 + u.values.size() * 24);
  put(buf, std::uint32_t{0});  // length, patched below
  put(buf, u.kind);
  buf.push_back(0);
  buf.push_back(0);
  buf.push_back(0);
  put(buf, u.rank);
  put(buf, static_cast<std::uint64_t>(u.sim_time));
  put(buf, u.wall_seconds);
  put(buf, static_cast<std::uint32_t>(u.values.size()));
  for (const auto& [name, value] : u.values) {
    const auto n = static_cast<std::uint16_t>(std::min<std::size_t>(name.size(), 0xFFFF));
    put(buf, n);
    buf.insert(buf.end(), name.begin(), name.begin() + n);
    put(buf, value);
  }
  const auto total = static_cast<std::uint32_t>(buf.size() - 4);
  std::memcpy(buf.data(), &total, 4);
  return buf;
}

bool decode_control_update(const std::uint8_t* data, std::size_t len, ControlUpdate& out) {
  std::size_t off = 0;
  std::uint32_t body = 0;
  if (!get(data, len, off, body)) return false;
  if (body != len - 4) return false;
  std::uint8_t pad[3];
  if (!get(data, len, off, out.kind)) return false;
  if (!get(data, len, off, pad[0]) || !get(data, len, off, pad[1]) ||
      !get(data, len, off, pad[2])) {
    return false;
  }
  std::uint64_t sim = 0;
  std::uint32_t n = 0;
  if (!get(data, len, off, out.rank) || !get(data, len, off, sim) ||
      !get(data, len, off, out.wall_seconds) || !get(data, len, off, n)) {
    return false;
  }
  out.sim_time = static_cast<SimTime>(sim);
  out.values.clear();
  out.values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint16_t name_len = 0;
    if (!get(data, len, off, name_len)) return false;
    if (off + name_len > len) return false;
    std::string name(reinterpret_cast<const char*>(data + off), name_len);
    off += name_len;
    double value = 0.0;
    if (!get(data, len, off, value)) return false;
    out.values.emplace_back(std::move(name), value);
  }
  return off == len;
}

bool control_socketpair(int fd[2]) {
  return ::socketpair(AF_UNIX, SOCK_SEQPACKET, 0, fd) == 0;
}

void send_control_update(int fd, const ControlUpdate& u) {
  if (fd < 0) return;
  const std::vector<std::uint8_t> frame = encode_control_update(u);
  // MSG_DONTWAIT + SEQPACKET: the whole frame lands or nothing does. A full
  // buffer or dead parent drops the update — the sim must never block here.
  (void)::send(fd, frame.data(), frame.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
}

void FleetAggregator::start(std::vector<int> fds, std::vector<std::string> names,
                            Options opts) {
  stop();
  opts_ = std::move(opts);
  fds_ = std::move(fds);
  procs_.assign(fds_.size(), FleetProcess{});
  for (std::size_t i = 0; i < procs_.size() && i < names.size(); ++i) {
    procs_[i].name = names[i];
  }
  stop_requested_ = false;
  series_.clear();
  t0_ = std::chrono::steady_clock::now();
  if (fds_.empty()) return;
  thread_ = std::thread([this] { run(); });
}

void FleetAggregator::stop() {
  if (!thread_.joinable()) {
    for (int fd : fds_) {
      if (fd >= 0) ::close(fd);
    }
    fds_.clear();
    return;
  }
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final pass: drain anything the children flushed between the last poll
  // and their exit, then emit the final line + snapshot.
  for (std::size_t i = 0; i < fds_.size(); ++i) drain_fd(i);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  {
    std::lock_guard<std::mutex> g(mu_);
    if (opts_.progress_period_ms != 0) emit_progress(wall);
    if (opts_.metrics_period_ms != 0) series_.push_back(fleet_snapshot(wall));
  }
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

std::vector<MetricsSnapshot> FleetAggregator::take_series() {
  std::vector<MetricsSnapshot> out;
  std::lock_guard<std::mutex> g(mu_);
  out.swap(series_);
  return out;
}

std::vector<FleetProcess> FleetAggregator::processes() const {
  std::lock_guard<std::mutex> g(mu_);
  return procs_;
}

void FleetAggregator::drain_fd(std::size_t idx) {
  int fd = fds_[idx];
  if (fd < 0) return;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t r = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained; other errors: give up until next poll
    }
    if (r == 0) {
      // EOF: the child closed its end (exit). Keep the last state.
      std::lock_guard<std::mutex> g(mu_);
      procs_[idx].finished = true;
      return;
    }
    ControlUpdate u;
    if (!decode_control_update(buf, static_cast<std::size_t>(r), u)) continue;
    std::lock_guard<std::mutex> g(mu_);
    FleetProcess& p = procs_[idx];
    p.reported = true;
    p.sim_time = u.sim_time;
    p.wall_seconds = u.wall_seconds;
    p.speed = u.wall_seconds > 0.0
                  ? (static_cast<double>(u.sim_time) / 1e12) / u.wall_seconds
                  : 0.0;
    if (u.kind == kCtrlSnapshot) p.trunk = std::move(u.values);
  }
}

MetricsSnapshot FleetAggregator::fleet_snapshot(double wall) const {
  MetricsSnapshot snap;
  snap.wall_seconds = wall;
  SimTime sim_min = kSimTimeMax, sim_max = 0;
  double speed_min = 0.0, speed_max = 0.0;
  bool any = false;
  std::map<std::string, double> sums;
  for (std::size_t r = 0; r < procs_.size(); ++r) {
    const FleetProcess& p = procs_[r];
    if (!p.reported) continue;
    const std::string prefix = "proc." + std::to_string(r) + ".";
    snap.gauges.emplace_back(prefix + "sim_ns", static_cast<double>(p.sim_time) / 1e3);
    snap.gauges.emplace_back(prefix + "speed", p.speed);
    for (const auto& [name, value] : p.trunk) {
      snap.gauges.emplace_back(prefix + name, value);
      sums[name] += value;
    }
    sim_min = std::min(sim_min, p.sim_time);
    sim_max = std::max(sim_max, p.sim_time);
    speed_min = any ? std::min(speed_min, p.speed) : p.speed;
    speed_max = any ? std::max(speed_max, p.speed) : p.speed;
    any = true;
  }
  snap.gauges.emplace_back("fleet.procs", static_cast<double>(procs_.size()));
  if (any) {
    snap.gauges.emplace_back("fleet.sim_time_min_ns", static_cast<double>(sim_min) / 1e3);
    snap.gauges.emplace_back("fleet.sim_time_max_ns", static_cast<double>(sim_max) / 1e3);
    snap.gauges.emplace_back("fleet.speed_min", speed_min);
    snap.gauges.emplace_back("fleet.speed_max", speed_max);
    for (const auto& [name, total] : sums) {
      snap.gauges.emplace_back("fleet." + name, total);
    }
  }
  return snap;
}

void FleetAggregator::emit_progress(double wall) {
  SimTime sim_min = kSimTimeMax;
  std::size_t reporting = 0, finished = 0;
  for (const FleetProcess& p : procs_) {
    if (p.reported) {
      sim_min = std::min(sim_min, p.sim_time);
      ++reporting;
    }
    if (p.finished) ++finished;
  }
  if (reporting == 0) sim_min = 0;
  std::string line = format_progress(sim_min, opts_.sim_end, wall);
  line += " | " + std::to_string(procs_.size()) + " procs";
  if (finished != 0) line += " (" + std::to_string(finished) + " done)";
  if (opts_.sink) {
    opts_.sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void FleetAggregator::run() {
  const std::uint64_t p_prog = opts_.progress_period_ms;
  const std::uint64_t p_metr = opts_.metrics_period_ms;
  std::uint64_t tick = 100;
  if (p_prog && p_metr) {
    tick = std::min(p_prog, p_metr);
  } else if (p_prog || p_metr) {
    tick = p_prog ? p_prog : p_metr;
  }
  tick = std::min<std::uint64_t>(tick, 100);  // stay responsive to stop()
  auto next_prog = t0_ + std::chrono::milliseconds(p_prog);
  auto next_metr = t0_ + std::chrono::milliseconds(p_metr);

  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (cv_.wait_for(lk, std::chrono::milliseconds(tick),
                       [this] { return stop_requested_; })) {
        return;
      }
    }
    std::vector<struct pollfd> pfds;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      bool fin;
      {
        std::lock_guard<std::mutex> g(mu_);
        fin = procs_[i].finished;
      }
      if (fds_[i] < 0 || fin) continue;
      pfds.push_back({fds_[i], POLLIN, 0});
      idx.push_back(i);
    }
    if (!pfds.empty()) {
      int pr = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 0);
      if (pr > 0) {
        for (std::size_t k = 0; k < pfds.size(); ++k) {
          if (pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) drain_fd(idx[k]);
        }
      }
    }
    const auto now = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(now - t0_).count();
    std::lock_guard<std::mutex> g(mu_);
    if (p_prog && now >= next_prog) {
      emit_progress(wall);
      next_prog += std::chrono::milliseconds(p_prog);
      if (next_prog < now) next_prog = now + std::chrono::milliseconds(p_prog);
    }
    if (p_metr && now >= next_metr) {
      series_.push_back(fleet_snapshot(wall));
      next_metr += std::chrono::milliseconds(p_metr);
      if (next_metr < now) next_metr = now + std::chrono::milliseconds(p_metr);
    }
  }
}

}  // namespace splitsim::obs
