// Machine-readable end-of-run summary: one JSON object unifying the raw
// RunStats, the post-processed profiler::ProfileReport, the final metrics
// snapshot, and (when tracing ran) the trace recorder stats. This is the
// artifact scripts should consume instead of scraping stdout tables.
//
// Sits at the top of the obs headers' dependency stack: unlike trace/
// metrics/progress (which runtime includes), this header includes runtime
// and profiler, so only the orchestration layer and benches should use it.
#pragma once

#include <string>
#include <vector>

#include "obs/merge.hpp"
#include "obs/metrics.hpp"
#include "profiler/profiler.hpp"
#include "runtime/runner.hpp"

namespace splitsim::obs {

/// Per-process row of a multi-process run's merged summary, built by the
/// run_multiprocess parent from the children's k=v reports.
struct ProcessSummary {
  std::string name;     ///< process-group name
  std::string outcome;  ///< "completed" / "error" / "missing"
  std::string digest;   ///< per-process digest, "0x%016x"
  double wall_seconds = 0.0;
  double sim_speed = 0.0;  ///< sim seconds per wall second
  std::uint64_t trunk_rx_msgs = 0;
  std::uint64_t wire_tx_frames = 0;
  std::uint64_t wire_tx_bytes = 0;
  std::uint64_t wire_tx_syncs = 0;
  std::uint64_t wire_tx_datas = 0;
  std::uint64_t futex_parks = 0;
  std::uint64_t futex_wakes = 0;
};

/// Checkpoint/restart record for the summary (filled by the orchestration
/// layer from the run's ckpt::Collector and CkptSpec).
struct CkptSummary {
  bool enabled = false;
  std::string dir;
  std::uint64_t snapshots_written = 0;
  double last_boundary_ms = 0.0;
  bool resumed = false;
  double resume_boundary_ms = 0.0;
  /// True when the replay crossed the resume boundary and matched the
  /// snapshot's recorded state (always true on a completed resumed run —
  /// divergence fails the run instead).
  bool resume_verified = false;
};

struct SummaryInputs {
  const runtime::RunStats* stats = nullptr;
  const profiler::ProfileReport* report = nullptr;
  const MetricsSnapshot* metrics = nullptr;  ///< final snapshot (optional)
  bool traced = false;                       ///< include trace_stats()
  const CkptSummary* ckpt = nullptr;         ///< checkpoint/restore record

  // ---- multi-process runs (the parent's merged summary) ----------------
  const std::vector<ProcessSummary>* processes = nullptr;
  const MetricsSnapshot* fleet = nullptr;         ///< final fleet snapshot
  const MergeResult* merge = nullptr;             ///< trace-merge stats
  const CriticalPathReport* critical_path = nullptr;
};

std::string summary_json(const SummaryInputs& in);

/// Write summary_json() to `path`, creating parent directories.
void write_summary_json(const std::string& path, const SummaryInputs& in);

}  // namespace splitsim::obs
