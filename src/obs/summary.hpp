// Machine-readable end-of-run summary: one JSON object unifying the raw
// RunStats, the post-processed profiler::ProfileReport, the final metrics
// snapshot, and (when tracing ran) the trace recorder stats. This is the
// artifact scripts should consume instead of scraping stdout tables.
//
// Sits at the top of the obs headers' dependency stack: unlike trace/
// metrics/progress (which runtime includes), this header includes runtime
// and profiler, so only the orchestration layer and benches should use it.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "profiler/profiler.hpp"
#include "runtime/runner.hpp"

namespace splitsim::obs {

struct SummaryInputs {
  const runtime::RunStats* stats = nullptr;
  const profiler::ProfileReport* report = nullptr;
  const MetricsSnapshot* metrics = nullptr;  ///< final snapshot (optional)
  bool traced = false;                       ///< include trace_stats()
};

std::string summary_json(const SummaryInputs& in);

/// Write summary_json() to `path`, creating parent directories.
void write_summary_json(const std::string& path, const SummaryInputs& in);

}  // namespace splitsim::obs
