#include "obs/summary.hpp"

#include <filesystem>
#include <fstream>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace splitsim::obs {

namespace {

void append_counters(std::string& out, const sync::ProfCounters& c) {
  out += "{\"tx_msgs\":" + std::to_string(c.tx_msgs);
  out += ",\"rx_msgs\":" + std::to_string(c.rx_msgs);
  out += ",\"tx_syncs\":" + std::to_string(c.tx_syncs);
  out += ",\"rx_syncs\":" + std::to_string(c.rx_syncs);
  out += ",\"tx_cycles\":" + std::to_string(c.tx_cycles);
  out += ",\"rx_cycles\":" + std::to_string(c.rx_cycles);
  out += ",\"sync_wait_cycles\":" + std::to_string(c.sync_wait_cycles);
  out += ",\"backpressure_stalls\":" + std::to_string(c.backpressure_stalls);
  out += "}";
}

void append_snapshot(std::string& out, const MetricsSnapshot& s) {
  out += "{\"wall_seconds\":" + json_num(s.wall_seconds);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [n, v] : s.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(n) + "\":" + json_num(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [n, v] : s.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(n) + "\":" + json_num(v);
  }
  out += "}}";
}

}  // namespace

std::string summary_json(const SummaryInputs& in) {
  std::string out = "{\n";

  if (in.stats != nullptr) {
    const runtime::RunStats& st = *in.stats;
    out += "\"run\":{";
    out += "\"mode\":\"" + runtime::to_string(st.mode) + "\"";
    out += ",\"sim_seconds\":" + json_num(st.sim_seconds());
    out += ",\"wall_seconds\":" + json_num(st.wall_seconds);
    out += ",\"sim_speed\":" + json_num(st.sim_speed());
    out += ",\"outcome\":\"" + runtime::to_string(st.outcome) + "\"";
    if (st.outcome != runtime::RunOutcome::kCompleted) {
      out += ",\"error\":\"" + json_escape(st.error) + "\"";
      out += ",\"error_component\":\"" + json_escape(st.error_component) + "\"";
      out += ",\"error_sim_ns\":" + std::to_string(to_ns(st.error_sim_time));
    }
    char dig[32];
    std::snprintf(dig, sizeof(dig), "0x%016llx",
                  static_cast<unsigned long long>(st.digest.value()));
    out += ",\"digest\":\"" + std::string(dig) + "\"";
    if (!st.pooled_workers.empty()) {
      // Per-worker pooled scheduling stats: the load-imbalance view the
      // adaptive rebalancer works from (empty for other run modes).
      out += ",\"workers\":[";
      bool firstw = true;
      for (const runtime::PooledWorkerStats& w : st.pooled_workers) {
        if (!firstw) out += ",";
        firstw = false;
        out += "{\"quanta\":" + std::to_string(w.quanta);
        out += ",\"busy_cycles\":" + std::to_string(w.busy_cycles);
        out += ",\"steals\":" + std::to_string(w.steals);
        out += ",\"sched_parks\":" + std::to_string(w.sched_parks);
        out += ",\"sched_park_cycles\":" + std::to_string(w.sched_park_cycles);
        out += ",\"migrations_in\":" + std::to_string(w.migrations_in);
        out += "}";
      }
      out += "]";
    }
    out += ",\"components\":[";
    bool firstc = true;
    for (const runtime::ComponentStats& c : st.components) {
      if (!firstc) out += ",";
      firstc = false;
      out += "\n{\"name\":\"" + json_escape(c.name) + "\"";
      out += ",\"events\":" + std::to_string(c.events);
      out += ",\"batches\":" + std::to_string(c.batches);
      out += ",\"busy_cycles\":" + std::to_string(c.busy_cycles);
      out += ",\"wall_cycles\":" + std::to_string(c.wall_cycles);
      out += ",\"drain_cycles\":" + std::to_string(c.drain_cycles);
      out += ",\"adapters\":[";
      bool firsta = true;
      for (const runtime::AdapterStats& a : c.adapters) {
        if (!firsta) out += ",";
        firsta = false;
        out += "{\"adapter\":\"" + json_escape(a.adapter) + "\"";
        out += ",\"peer\":\"" + json_escape(a.peer_component) + "\"";
        out += ",\"counters\":";
        append_counters(out, a.totals);
        out += "}";
      }
      out += "]}";
    }
    out += "]}";
  }

  if (in.report != nullptr) {
    const profiler::ProfileReport& r = *in.report;
    if (out.size() > 2) out += ",\n";
    out += "\"profile\":{";
    out += "\"sim_speed\":" + json_num(r.sim_speed);
    out += ",\"components\":[";
    bool firstc = true;
    for (const profiler::ComponentReport& c : r.components) {
      if (!firstc) out += ",";
      firstc = false;
      out += "\n{\"name\":\"" + json_escape(c.name) + "\"";
      out += ",\"efficiency\":" + json_num(c.efficiency);
      out += ",\"waiting_fraction\":" + json_num(c.waiting_fraction);
      out += ",\"load_cycles_per_simsec\":" + json_num(c.load_cycles_per_simsec);
      out += ",\"adapters\":[";
      bool firsta = true;
      for (const profiler::AdapterReport& a : c.adapters) {
        if (!firsta) out += ",";
        firsta = false;
        out += "{\"adapter\":\"" + json_escape(a.adapter) + "\"";
        out += ",\"peer\":\"" + json_escape(a.peer_component) + "\"";
        out += ",\"wait_fraction\":" + json_num(a.wait_fraction);
        out += "}";
      }
      out += "]}";
    }
    out += "]}";
  }

  if (in.metrics != nullptr) {
    if (out.size() > 2) out += ",\n";
    out += "\"metrics\":";
    append_snapshot(out, *in.metrics);
  }

  if (in.processes != nullptr) {
    if (out.size() > 2) out += ",\n";
    out += "\"processes\":[";
    bool firstp = true;
    for (const ProcessSummary& p : *in.processes) {
      if (!firstp) out += ",";
      firstp = false;
      out += "\n{\"name\":\"" + json_escape(p.name) + "\"";
      out += ",\"outcome\":\"" + json_escape(p.outcome) + "\"";
      out += ",\"digest\":\"" + json_escape(p.digest) + "\"";
      out += ",\"wall_seconds\":" + json_num(p.wall_seconds);
      out += ",\"sim_speed\":" + json_num(p.sim_speed);
      out += ",\"trunk_rx_msgs\":" + std::to_string(p.trunk_rx_msgs);
      out += ",\"wire_tx_frames\":" + std::to_string(p.wire_tx_frames);
      out += ",\"wire_tx_bytes\":" + std::to_string(p.wire_tx_bytes);
      out += ",\"wire_tx_syncs\":" + std::to_string(p.wire_tx_syncs);
      out += ",\"wire_tx_datas\":" + std::to_string(p.wire_tx_datas);
      out += ",\"futex_parks\":" + std::to_string(p.futex_parks);
      out += ",\"futex_wakes\":" + std::to_string(p.futex_wakes);
      out += "}";
    }
    out += "]";
  }

  if (in.fleet != nullptr) {
    if (out.size() > 2) out += ",\n";
    out += "\"fleet\":";
    append_snapshot(out, *in.fleet);
  }

  if (in.merge != nullptr) {
    if (out.size() > 2) out += ",\n";
    out += "\"trace_merge\":{";
    out += "\"shards\":" + std::to_string(in.merge->shards);
    out += ",\"events\":" + std::to_string(in.merge->events);
    out += ",\"recorded\":" + std::to_string(in.merge->recorded);
    out += ",\"dropped\":" + std::to_string(in.merge->dropped);
    out += ",\"flow_pairs\":" + std::to_string(in.merge->flow_pairs);
    out += ",\"cross_process_flow_pairs\":" +
           std::to_string(in.merge->cross_process_flow_pairs);
    out += "}";
  }

  if (in.critical_path != nullptr) {
    if (out.size() > 2) out += ",\n";
    out += "\"critical_path\":" + critical_path_json(*in.critical_path);
  }

  if (in.ckpt != nullptr) {
    const CkptSummary& ck = *in.ckpt;
    if (out.size() > 2) out += ",\n";
    out += "\"checkpoint\":{";
    out += std::string("\"enabled\":") + (ck.enabled ? "true" : "false");
    out += ",\"dir\":\"" + json_escape(ck.dir) + "\"";
    out += ",\"snapshots_written\":" + std::to_string(ck.snapshots_written);
    out += ",\"last_boundary_ms\":" + json_num(ck.last_boundary_ms);
    out += std::string(",\"resumed\":") + (ck.resumed ? "true" : "false");
    if (ck.resumed) {
      out += ",\"resume_boundary_ms\":" + json_num(ck.resume_boundary_ms);
      out += std::string(",\"resume_verified\":") + (ck.resume_verified ? "true" : "false");
    }
    out += "}";
  }

  if (in.traced) {
    const TraceStats ts = trace_stats();
    if (out.size() > 2) out += ",\n";
    out += "\"trace\":{";
    out += "\"recorded\":" + std::to_string(ts.recorded);
    out += ",\"retained\":" + std::to_string(ts.retained);
    out += ",\"dropped\":" + std::to_string(ts.dropped);
    out += ",\"threads\":" + std::to_string(ts.threads);
    out += "}";
  }

  out += "\n}\n";
  return out;
}

void write_summary_json(const std::string& path, const SummaryInputs& in) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream os(path);
  os << summary_json(in);
}

}  // namespace splitsim::obs
