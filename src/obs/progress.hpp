// Live run progress (the "now" pillar of the obs layer): a background
// reporter thread that periodically
//  * emits human-readable progress lines (sim time, wall time, speedup vs
//    real time, ETA to the configured sim end), and
//  * snapshots the metrics registry into an in-memory series for the
//    end-of-run metrics JSON.
//
// The reporter only performs thread-safe reads: the sim-time probe is a
// caller-supplied closure over atomics (each component publishes its
// low-water mark), and Registry::snapshot is relaxed-atomic based. Stopping
// the reporter emits one final progress line and takes one final snapshot,
// so even sub-period runs produce at least one of each.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace splitsim::obs {

/// Obs knobs as the runtime sees them (orch::ProfileSpec maps onto this).
struct ObsConfig {
  bool trace = false;                            ///< record a Chrome trace
  std::size_t trace_ring_capacity = std::size_t{1} << 16;  ///< records/thread
  std::uint64_t metrics_period_ms = 0;  ///< 0 = no periodic metrics snapshots
  std::uint64_t progress_period_ms = 0;  ///< 0 = no live progress lines

  /// When set, replaces the progress line emission entirely (no tty write):
  /// multi-process children route ticks to the parent's control channel
  /// through this instead of spamming the inherited stderr.
  std::function<void(SimTime sim_now, double wall_seconds)> on_progress;
  /// Invoked (outside the reporter lock) with each periodic and final
  /// metrics snapshot; children forward these over the control channel.
  std::function<void(SimTime sim_now, double wall_seconds, const MetricsSnapshot&)>
      on_snapshot;

  bool any() const { return trace || metrics_period_ms || progress_period_ms; }
  bool live() const { return metrics_period_ms || progress_period_ms; }
};

struct ProgressConfig {
  std::uint64_t progress_period_ms = 0;  ///< 0 disables progress lines
  std::uint64_t metrics_period_ms = 0;   ///< 0 disables periodic snapshots
  SimTime sim_end = 0;                   ///< target sim time (for ETA)
  std::function<SimTime()> sim_now;      ///< thread-safe sim-time probe
  Registry* registry = nullptr;          ///< snapshot source (may be null)
  /// Progress line sink; defaults to stderr when empty.
  std::function<void(const std::string&)> sink;
  /// When set, progress ticks call this INSTEAD of formatting/sinking a
  /// line (see ObsConfig::on_progress).
  std::function<void(SimTime sim_now, double wall_seconds)> on_progress;
  /// Called with every snapshot (periodic and final) after it is appended
  /// to the series; runs outside the reporter lock.
  std::function<void(SimTime sim_now, double wall_seconds, const MetricsSnapshot&)>
      on_snapshot;
};

/// Format one progress line ("sim 12.0ms | wall 1.4s | 0.0086x | eta 115s").
std::string format_progress(SimTime sim_now, SimTime sim_end, double wall_seconds);

class Reporter {
 public:
  Reporter() = default;
  ~Reporter() { stop(); }
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  /// Launch the reporter thread. No-op when both periods are zero.
  void start(ProgressConfig cfg);

  /// Join the thread (idempotent); emits a final progress line and takes a
  /// final metrics snapshot so short runs still produce output.
  void stop();

  bool running() const { return thread_.joinable(); }

  /// Snapshot series collected so far (moves out; call after stop()).
  std::vector<MetricsSnapshot> take_series();

  std::uint64_t progress_lines() const { return lines_; }

 private:
  void run();
  void emit_progress(double wall_seconds);

  ProgressConfig cfg_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::vector<MetricsSnapshot> series_;
  std::uint64_t lines_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace splitsim::obs
