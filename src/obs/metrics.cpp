#include "obs/metrics.hpp"

#include <filesystem>
#include <fstream>
#include <tuple>

#include "obs/json.hpp"

namespace splitsim::obs {

double MetricsSnapshot::value(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c;
  }
  counters_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                         std::forward_as_tuple());
  return counters_.back().second;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [n, c] : gauges_) {
    if (n == name) return c;
  }
  gauges_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                       std::forward_as_tuple());
  return gauges_.back().second;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [n, c] : hists_) {
    if (n == name) return c;
  }
  hists_.emplace_back();
  hists_.back().first = name;
  return hists_.back().second;
}

void Registry::register_poll(const std::string& name, std::function<double()> fn) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [n, f] : polls_) {
    if (n == name) {
      f = std::move(fn);
      return;
    }
  }
  polls_.emplace_back(name, std::move(fn));
}

MetricsSnapshot Registry::snapshot(double wall_seconds) const {
  MetricsSnapshot s;
  s.wall_seconds = wall_seconds;
  std::lock_guard<std::mutex> g(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [n, c] : counters_) {
    s.counters.emplace_back(n, static_cast<double>(c.value()));
  }
  s.gauges.reserve(gauges_.size() + polls_.size());
  for (const auto& [n, v] : gauges_) s.gauges.emplace_back(n, v.value());
  for (const auto& [n, fn] : polls_) s.gauges.emplace_back(n, fn ? fn() : 0.0);
  for (const auto& [n, h] : hists_) {
    SnapshotHist sh;
    sh.name = n;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      sh.buckets[static_cast<std::size_t>(i)] = h.bucket(i);
      sh.count += sh.buckets[static_cast<std::size_t>(i)];
    }
    s.histograms.push_back(std::move(sh));
  }
  return s;
}

void Registry::clear() {
  std::lock_guard<std::mutex> g(mu_);
  counters_.clear();
  gauges_.clear();
  hists_.clear();
  polls_.clear();
}

std::string metrics_json(const std::vector<MetricsSnapshot>& series) {
  std::string out = "{\"snapshots\":[\n";
  bool first_snap = true;
  for (const MetricsSnapshot& s : series) {
    if (!first_snap) out += ",\n";
    first_snap = false;
    out += "{\"wall_seconds\":" + json_num(s.wall_seconds);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [n, v] : s.counters) {
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(n) + "\":" + json_num(v);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [n, v] : s.gauges) {
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(n) + "\":" + json_num(v);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const SnapshotHist& h : s.histograms) {
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(h.name) + "\":{\"count\":" +
             std::to_string(h.count) + ",\"buckets\":[";
      // Trailing zero buckets are elided; a reader reconstructs them from
      // the fixed bucket rule (bucket i covers bit-width-i values).
      int last = Histogram::kBuckets - 1;
      while (last > 0 && h.buckets[static_cast<std::size_t>(last)] == 0) --last;
      for (int i = 0; i <= last; ++i) {
        if (i) out += ",";
        out += std::to_string(h.buckets[static_cast<std::size_t>(i)]);
      }
      out += "]}";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

void write_metrics_json(const std::string& path, const std::vector<MetricsSnapshot>& series) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream os(path);
  os << metrics_json(series);
}

}  // namespace splitsim::obs
