// Minimal JSON writing helpers shared by the obs exporters (Chrome trace,
// metrics series, run summary). Writing only — the validators that *parse*
// these artifacts live in tests/test_obs.cpp and tools/validate_trace.py.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace splitsim::obs {

/// JSON string escaping (quotes, backslash, control characters).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Render a double as a JSON number (JSON has no NaN/Inf; clamp to 0).
inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace splitsim::obs
