#include "obs/merge.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/json.hpp"
#include "obs/jsonread.hpp"

namespace splitsim::obs {

namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("trace merge: cannot read shard '" + path + "'");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Serialize a JsonValue back out. Numbers print as integers when integral
/// (pids, ids, counts) and with trace-exporter precision otherwise.
void serialize(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.boolean ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      char buf[40];
      if (std::floor(v.number) == v.number && std::fabs(v.number) < 9e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v.number));
      } else {
        std::snprintf(buf, sizeof(buf), "%.3f", v.number);
      }
      out += buf;
      break;
    }
    case JsonValue::Kind::kString:
      out += '"';
      out += json_escape(v.string);
      out += '"';
      break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& e : v.array) {
        if (!first) out += ',';
        serialize(e, out);
        first = false;
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.object) {
        if (!first) out += ',';
        out += '"';
        out += json_escape(k);
        out += "\":";
        serialize(e, out);
        first = false;
      }
      out += '}';
      break;
    }
  }
}

void set_member(JsonValue& obj, const std::string& key, JsonValue value) {
  for (auto& [k, v] : obj.object) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.object.emplace_back(key, std::move(value));
}

JsonValue make_num(double d) {
  JsonValue v;
  v.kind = JsonValue::Kind::kNumber;
  v.number = d;
  return v;
}

JsonValue make_str(std::string s) {
  JsonValue v;
  v.kind = JsonValue::Kind::kString;
  v.string = std::move(s);
  return v;
}

/// One attributed wait: `waiter` (thread name of the blocked component)
/// spent [t0, t1] us blocked on `waited`.
struct WaitSpan {
  std::string waiter;
  std::string waited;
  double t0 = 0.0;
  double t1 = 0.0;
};

CriticalPathReport critical_path(const std::vector<WaitSpan>& waits, double trace_end_us,
                                 std::size_t n_epochs) {
  CriticalPathReport report;
  if (waits.empty() || trace_end_us <= 0.0) return report;
  if (n_epochs == 0) n_epochs = 1;
  const double epoch_us = trace_end_us / static_cast<double>(n_epochs);
  std::map<std::string, double> limiter_weight;

  for (std::size_t e = 0; e < n_epochs; ++e) {
    const double t0 = epoch_us * static_cast<double>(e);
    const double t1 = e + 1 == n_epochs ? trace_end_us : t0 + epoch_us;
    // Edge weights: total wait time of `waiter` on `waited` overlapping
    // this epoch; node weight = total outgoing wait.
    std::map<std::pair<std::string, std::string>, double> edge;
    std::map<std::string, double> node;
    for (const WaitSpan& w : waits) {
      const double o0 = std::max(w.t0, t0);
      const double o1 = std::min(w.t1, t1);
      if (o1 <= o0) continue;
      edge[{w.waiter, w.waited}] += o1 - o0;
      node[w.waiter] += o1 - o0;
    }
    if (node.empty()) continue;

    // The chain starts at the component that waited the most, then follows
    // each node's heaviest outgoing wait edge. A node with no outgoing
    // attributed wait was BUSY, not blocked — it is the epoch's limiter.
    auto start = std::max_element(node.begin(), node.end(),
                                  [](const auto& a, const auto& b) {
                                    return a.second < b.second;
                                  });
    CriticalPathEpoch ep;
    ep.t0_us = t0;
    ep.t1_us = t1;
    std::string cur = start->first;
    std::set<std::string> visited;
    while (visited.insert(cur).second) {
      ep.chain.push_back(cur);
      const std::pair<const std::pair<std::string, std::string>, double>* best = nullptr;
      for (const auto& kv : edge) {
        if (kv.first.first != cur) continue;
        if (best == nullptr || kv.second > best->second) best = &kv;
      }
      if (best == nullptr) break;  // cur never waited: the limiter
      ep.wait_us += best->second;
      cur = best->first.second;
    }
    if (!visited.count(cur) || ep.chain.empty() || ep.chain.back() != cur) {
      // Either we stopped on a cycle (cur already visited) or the loop
      // appended the last waiter without its target; record the terminal.
      if (ep.chain.empty() || ep.chain.back() != cur) ep.chain.push_back(cur);
    }
    ep.limiter = ep.chain.back();
    limiter_weight[ep.limiter] += ep.wait_us;
    report.total_wait_us += ep.wait_us;
    report.epochs.push_back(std::move(ep));
  }

  if (!limiter_weight.empty()) {
    report.limiter = std::max_element(limiter_weight.begin(), limiter_weight.end(),
                                      [](const auto& a, const auto& b) {
                                        return a.second < b.second;
                                      })
                         ->first;
  }
  return report;
}

}  // namespace

MergeResult merge_trace_shards(const std::vector<std::string>& shard_paths,
                               const std::string& out_path, const MergeOptions& opts) {
  MergeResult result;
  std::vector<JsonValue> metadata;  ///< "M" records, shard order
  std::vector<JsonValue> events;    ///< everything else, to be ts-sorted
  std::unordered_set<unsigned> used_pids;

  for (const std::string& path : shard_paths) {
    JsonValue shard;
    std::string err;
    if (!json_parse(slurp(path), shard, err)) {
      throw std::runtime_error("trace merge: shard '" + path + "' is not valid JSON: " + err);
    }
    const JsonValue* trace_events = shard.find("traceEvents");
    if (trace_events == nullptr || !trace_events->is_array()) {
      throw std::runtime_error("trace merge: shard '" + path + "' has no traceEvents array");
    }
    if (const JsonValue* other = shard.find("otherData")) {
      result.recorded += static_cast<std::uint64_t>(other->num("recorded"));
      result.dropped += static_cast<std::uint64_t>(other->num("dropped"));
    }

    // Shards from one run already carry distinct pids (rank + 1); merging
    // arbitrary single-process traces (all pid 1) still must not alias, so
    // colliding shards are remapped to a fresh pid wholesale.
    unsigned shard_pid = 0;
    for (const JsonValue& ev : trace_events->array) {
      if (const JsonValue* p = ev.find("pid")) {
        shard_pid = static_cast<unsigned>(p->number);
        break;
      }
    }
    unsigned remap = shard_pid;
    if (!used_pids.insert(shard_pid).second) {
      remap = 1;
      while (used_pids.count(remap) != 0) ++remap;
      used_pids.insert(remap);
    }

    for (const JsonValue& ev : trace_events->array) {
      JsonValue copy = ev;
      if (remap != shard_pid) {
        if (copy.find("pid") != nullptr) set_member(copy, "pid", make_num(remap));
      }
      if (copy.str("ph") == "M") {
        metadata.push_back(std::move(copy));
      } else {
        events.push_back(std::move(copy));
      }
    }
    ++result.shards;
  }
  if (result.shards == 0) throw std::runtime_error("trace merge: no shards given");

  std::stable_sort(events.begin(), events.end(), [](const JsonValue& a, const JsonValue& b) {
    return a.num("ts") < b.num("ts");
  });

  // ---- flow pairing statistics -------------------------------------------
  // Flow ids are (channel, wire-ts) hashes, unique per message; an id seen
  // as both "s" and "f" is a delivered message, and differing pids mean the
  // arrow spans a process boundary.
  struct FlowSides {
    unsigned begin_pid = 0, end_pid = 0;
    int begins = 0, ends = 0;
  };
  std::unordered_map<std::string, FlowSides> flows;
  for (const JsonValue& ev : events) {
    const std::string ph = ev.str("ph");
    if (ph != "s" && ph != "f") continue;
    FlowSides& f = flows[ev.str("id")];
    if (ph == "s") {
      ++f.begins;
      f.begin_pid = static_cast<unsigned>(ev.num("pid"));
    } else {
      ++f.ends;
      f.end_pid = static_cast<unsigned>(ev.num("pid"));
    }
  }
  for (const auto& [id, f] : flows) {
    const int pairs = std::min(f.begins, f.ends);
    if (pairs <= 0) continue;
    result.flow_pairs += static_cast<std::size_t>(pairs);
    if (f.begin_pid != f.end_pid) {
      result.cross_process_flow_pairs += static_cast<std::size_t>(pairs);
    }
  }

  // ---- critical path ------------------------------------------------------
  // Thread names key on (pid, tid): intern ids are per-process, so the same
  // tid means different components in different shards.
  std::map<std::pair<unsigned, unsigned>, std::string> thread_names;
  for (const JsonValue& m : metadata) {
    if (m.str("name") != "thread_name") continue;
    const JsonValue* args = m.find("args");
    if (args == nullptr) continue;
    thread_names[{static_cast<unsigned>(m.num("pid")), static_cast<unsigned>(m.num("tid"))}] =
        args->str("name");
  }
  std::vector<WaitSpan> waits;
  double trace_end_us = 0.0;
  for (const JsonValue& ev : events) {
    if (ev.str("ph") != "X") continue;
    const double ts = ev.num("ts");
    const double dur = ev.num("dur");
    trace_end_us = std::max(trace_end_us, ts + dur);
    if (ev.str("name") != "sync_wait") continue;
    const JsonValue* args = ev.find("args");
    if (args == nullptr) continue;
    const std::string waited = args->str("wait_on");
    if (waited.empty()) continue;
    const auto key = std::make_pair(static_cast<unsigned>(ev.num("pid")),
                                    static_cast<unsigned>(ev.num("tid")));
    auto it = thread_names.find(key);
    const std::string waiter = it != thread_names.end()
                                   ? it->second
                                   : "pid" + std::to_string(key.first) + "/tid" +
                                         std::to_string(key.second);
    waits.push_back({waiter, waited, ts, ts + dur});
  }
  result.critical_path = critical_path(waits, trace_end_us, opts.critical_path_epochs);

  // ---- synthetic critical-path track (pid 0) ------------------------------
  if (opts.emit_critical_path_track && !result.critical_path.epochs.empty()) {
    JsonValue pm;
    pm.kind = JsonValue::Kind::kObject;
    set_member(pm, "ph", make_str("M"));
    set_member(pm, "pid", make_num(0));
    set_member(pm, "name", make_str("process_name"));
    JsonValue pa;
    pa.kind = JsonValue::Kind::kObject;
    set_member(pa, "name", make_str("fleet"));
    set_member(pm, "args", std::move(pa));
    metadata.push_back(std::move(pm));

    JsonValue tm;
    tm.kind = JsonValue::Kind::kObject;
    set_member(tm, "ph", make_str("M"));
    set_member(tm, "pid", make_num(0));
    set_member(tm, "tid", make_num(1));
    set_member(tm, "name", make_str("thread_name"));
    JsonValue ta;
    ta.kind = JsonValue::Kind::kObject;
    set_member(ta, "name", make_str("critical-path"));
    set_member(tm, "args", std::move(ta));
    metadata.push_back(std::move(tm));

    for (const CriticalPathEpoch& ep : result.critical_path.epochs) {
      JsonValue ev;
      ev.kind = JsonValue::Kind::kObject;
      set_member(ev, "ph", make_str("X"));
      set_member(ev, "pid", make_num(0));
      set_member(ev, "tid", make_num(1));
      set_member(ev, "name", make_str(ep.limiter));
      set_member(ev, "ts", make_num(ep.t0_us));
      set_member(ev, "dur", make_num(ep.t1_us - ep.t0_us));
      JsonValue args;
      args.kind = JsonValue::Kind::kObject;
      std::string chain;
      for (const std::string& c : ep.chain) {
        if (!chain.empty()) chain += " -> ";
        chain += c;
      }
      set_member(args, "chain", make_str(chain));
      set_member(args, "wait_us", make_num(ep.wait_us));
      set_member(ev, "args", std::move(args));
      events.push_back(std::move(ev));
    }
  }

  // ---- write the merged trace --------------------------------------------
  result.events = metadata.size() + events.size();
  std::string out;
  out.reserve(result.events * 96 + 4096);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":" +
         std::to_string(result.recorded) + ",\"dropped\":" + std::to_string(result.dropped) +
         ",\"shards\":" + std::to_string(result.shards) + "},\"traceEvents\":[\n";
  bool first = true;
  for (const JsonValue& m : metadata) {
    if (!first) out += ",\n";
    serialize(m, out);
    first = false;
  }
  for (const JsonValue& ev : events) {
    if (!first) out += ",\n";
    serialize(ev, out);
    first = false;
  }
  out += "\n]}\n";

  std::filesystem::path p(out_path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream os(out_path, std::ios::binary);
  if (!os) throw std::runtime_error("trace merge: cannot write '" + out_path + "'");
  os << out;
  return result;
}

std::string critical_path_json(const CriticalPathReport& report) {
  std::string out = "{\"limiter\":\"" + json_escape(report.limiter) + "\",";
  out += "\"total_wait_us\":" + json_num(report.total_wait_us) + ",\"epochs\":[";
  bool first = true;
  for (const CriticalPathEpoch& ep : report.epochs) {
    if (!first) out += ",";
    out += "{\"t0_us\":" + json_num(ep.t0_us) + ",\"t1_us\":" + json_num(ep.t1_us) +
           ",\"limiter\":\"" + json_escape(ep.limiter) + "\",\"wait_us\":" +
           json_num(ep.wait_us) + ",\"chain\":[";
    for (std::size_t i = 0; i < ep.chain.size(); ++i) {
      if (i != 0) out += ",";
      out += "\"" + json_escape(ep.chain[i]) + "\"";
    }
    out += "]}";
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace splitsim::obs
