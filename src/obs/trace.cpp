#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"
#include "util/cycles.hpp"

namespace splitsim::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

struct ThreadRing {
  std::vector<TraceRecord> slots;  ///< power-of-two capacity, preallocated
  std::uint64_t head = 0;          ///< total records ever written (monotone)
};

/// Global recorder: owns every thread's ring. Rings are created under the
/// mutex (once per thread per trace) and then written lock-free by their
/// owning thread; export happens after the simulation's threads joined.
struct Recorder {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::vector<std::string> names;  ///< intern table; index = id
  std::size_t capacity = std::size_t{1} << 16;
  std::uint64_t epoch_tsc = 0;       ///< rdcycles() at start_tracing
  std::uint64_t epoch_override = 0;  ///< nonzero: use as epoch_tsc instead
  std::uint64_t generation = 0;
  std::uint32_t process_pid = 1;  ///< Chrome-trace pid of this shard
  std::string process_name;       ///< process_name metadata (empty = omit)

  Recorder() { reset_names(); }

  void reset_names() {
    names.assign(kNameFirstDynamic, "?");
    names[0] = "?";
    names[kNameAdvance] = "advance";
    names[kNameSyncWait] = "sync_wait";
    names[kNameParked] = "parked";
    names[kNameDeliver] = "deliver";
    names[kNameMsg] = "msg";
    names[kNameProgress] = "progress";
  }
};

Recorder& recorder() {
  static Recorder* r = new Recorder();  // leaked: usable during exit
  return *r;
}

struct ThreadSlot {
  ThreadRing* ring = nullptr;
  std::uint64_t generation = 0;
};
thread_local ThreadSlot t_slot;

ThreadRing* acquire_ring() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> g(r.mu);
  auto ring = std::make_unique<ThreadRing>();
  ring->slots.resize(r.capacity);
  ThreadRing* p = ring.get();
  r.rings.push_back(std::move(ring));
  t_slot.ring = p;
  t_slot.generation = r.generation;
  return p;
}

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

namespace detail {

void record(const TraceRecord& rec) {
  Recorder& r = recorder();
  ThreadRing* ring = t_slot.ring;
  if (ring == nullptr || t_slot.generation != r.generation) ring = acquire_ring();
  ring->slots[ring->head & (ring->slots.size() - 1)] = rec;
  ++ring->head;
}

}  // namespace detail

void start_tracing(std::size_t ring_capacity) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> g(r.mu);
  r.rings.clear();  // invalidated via the generation bump below
  ++r.generation;
  r.capacity = round_pow2(ring_capacity < 16 ? 16 : ring_capacity);
  r.reset_names();
  r.epoch_tsc = r.epoch_override != 0 ? r.epoch_override : rdcycles();
  detail::g_trace_enabled.store(true, std::memory_order_release);
}

void set_trace_process(std::uint32_t pid, const std::string& name) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> g(r.mu);
  r.process_pid = pid == 0 ? 1 : pid;
  r.process_name = name;
}

void set_trace_epoch(std::uint64_t epoch_tsc) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> g(r.mu);
  r.epoch_override = epoch_tsc;
}

void stop_tracing() { detail::g_trace_enabled.store(false, std::memory_order_release); }

std::uint32_t intern_name(const std::string& name) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> g(r.mu);
  for (std::size_t i = 0; i < r.names.size(); ++i) {
    if (r.names[i] == name) return static_cast<std::uint32_t>(i);
  }
  r.names.push_back(name);
  return static_cast<std::uint32_t>(r.names.size() - 1);
}

std::string name_of(std::uint32_t id) {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> g(r.mu);
  return id < r.names.size() ? r.names[id] : std::string("?");
}

TraceStats trace_stats() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> g(r.mu);
  TraceStats s;
  s.threads = r.rings.size();
  for (const auto& ring : r.rings) {
    s.recorded += ring->head;
    std::uint64_t kept = std::min<std::uint64_t>(ring->head, ring->slots.size());
    s.retained += kept;
    s.dropped += ring->head - kept;
  }
  return s;
}

std::string chrome_trace_json() {
  Recorder& r = recorder();
  std::lock_guard<std::mutex> g(r.mu);

  // Collect the retained window of every ring, oldest first, then order the
  // whole trace by begin time (Perfetto does not require sorted input, but
  // sorted output diffs and debugs better).
  std::vector<TraceRecord> recs;
  for (const auto& ring : r.rings) {
    std::uint64_t kept = std::min<std::uint64_t>(ring->head, ring->slots.size());
    std::uint64_t mask = ring->slots.size() - 1;
    for (std::uint64_t i = ring->head - kept; i < ring->head; ++i) {
      recs.push_back(ring->slots[i & mask]);
    }
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const TraceRecord& a, const TraceRecord& b) { return a.t0 < b.t0; });

  const double cyc_per_us = cycles_per_second() / 1e6;
  auto us = [&](std::uint64_t tsc) {
    if (tsc <= r.epoch_tsc) return 0.0;
    return static_cast<double>(tsc - r.epoch_tsc) / cyc_per_us;
  };
  auto name_str = [&](std::uint32_t id) {
    return json_escape(id < r.names.size() ? r.names[id] : "?");
  };

  // Ring accounting goes into the export so consumers can tell a complete
  // trace from a drop-oldest-truncated one (unpaired flows are expected in
  // the latter).
  std::uint64_t recorded = 0, dropped = 0;
  for (const auto& ring : r.rings) {
    recorded += ring->head;
    std::uint64_t kept = std::min<std::uint64_t>(ring->head, ring->slots.size());
    dropped += ring->head - kept;
  }

  const unsigned pid = r.process_pid;
  std::string out;
  out.reserve(recs.size() * 96 + 4096);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":" +
         std::to_string(recorded) + ",\"dropped\":" + std::to_string(dropped) +
         ",\"pid\":" + std::to_string(pid) +
         ",\"process\":\"" + json_escape(r.process_name) + "\"},\"traceEvents\":[\n";

  bool first = true;
  char buf[320];
  if (!r.process_name.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%u,\"name\":\"process_name\","
                  "\"args\":{\"name\":\"%s\"}}",
                  pid, json_escape(r.process_name).c_str());
    out += buf;
    first = false;
  }

  // Track (thread) metadata: one per referenced track id, named after the
  // component the track was interned for.
  std::vector<std::uint32_t> tracks;
  for (const TraceRecord& rec : recs) tracks.push_back(rec.track);
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
  for (std::uint32_t t : tracks) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",\n", pid, t, name_str(t).c_str());
    out += buf;
    first = false;
  }

  for (const TraceRecord& rec : recs) {
    const double sim_ns = static_cast<double>(rec.sim) / 1e3;
    switch (rec.kind) {
      case TraceKind::kSpan: {
        double ts = us(rec.t0);
        double dur = us(rec.t1) - ts;
        if (dur < 0) dur = 0;
        if (rec.name == kNameSyncWait && rec.arg != 0) {
          // Blocked-wait attribution: arg is the interned track id of the
          // limiting peer — the edge the critical-path pass walks.
          std::snprintf(buf, sizeof(buf),
                        "%s{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"name\":\"%s\",\"ts\":%.3f,"
                        "\"dur\":%.3f,\"args\":{\"sim_ns\":%.3f,\"wait_on\":\"%s\"}}",
                        first ? "" : ",\n", pid, rec.track, name_str(rec.name).c_str(), ts,
                        dur, sim_ns,
                        name_str(static_cast<std::uint32_t>(rec.arg)).c_str());
        } else {
          std::snprintf(buf, sizeof(buf),
                        "%s{\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"name\":\"%s\",\"ts\":%.3f,"
                        "\"dur\":%.3f,\"args\":{\"sim_ns\":%.3f}}",
                        first ? "" : ",\n", pid, rec.track, name_str(rec.name).c_str(), ts,
                        dur, sim_ns);
        }
        break;
      }
      case TraceKind::kInstant:
        std::snprintf(buf, sizeof(buf),
                      "%s{\"ph\":\"i\",\"pid\":%u,\"tid\":%u,\"name\":\"%s\",\"ts\":%.3f,"
                      "\"s\":\"t\",\"args\":{\"sim_ns\":%.3f,\"arg\":%llu}}",
                      first ? "" : ",\n", pid, rec.track, name_str(rec.name).c_str(),
                      us(rec.t0), sim_ns, static_cast<unsigned long long>(rec.arg));
        break;
      case TraceKind::kCounter:
        std::snprintf(buf, sizeof(buf),
                      "%s{\"ph\":\"C\",\"pid\":%u,\"tid\":%u,\"name\":\"%s\",\"ts\":%.3f,"
                      "\"args\":{\"value\":%llu}}",
                      first ? "" : ",\n", pid, rec.track, name_str(rec.name).c_str(),
                      us(rec.t0), static_cast<unsigned long long>(rec.arg));
        break;
      case TraceKind::kFlowBegin:
      case TraceKind::kFlowEnd: {
        const bool begin = rec.kind == TraceKind::kFlowBegin;
        std::snprintf(buf, sizeof(buf),
                      "%s{\"ph\":\"%s\",%s\"pid\":%u,\"tid\":%u,\"cat\":\"channel\","
                      "\"name\":\"msg\",\"id\":\"0x%llx\",\"ts\":%.3f,"
                      "\"args\":{\"sim_ns\":%.3f}}",
                      first ? "" : ",\n", begin ? "s" : "f", begin ? "" : "\"bp\":\"e\",",
                      pid, rec.track, static_cast<unsigned long long>(rec.arg), us(rec.t0),
                      sim_ns);
        break;
      }
    }
    out += buf;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream os(path);
  os << chrome_trace_json();
}

}  // namespace splitsim::obs
