// Live event tracing for SplitSim runs (the "deep" pillar of the obs
// layer; see DESIGN.md "Observability").
//
// Design constraints, in order:
//  1. Disabled-path guarantee: when tracing is off, every record_* call is
//     one relaxed atomic load and a predicted-not-taken branch. No
//     allocation, no stores, no function call into the recorder.
//  2. Zero allocation on the hot path when enabled: records are fixed-size
//     PODs written into a preallocated per-thread ring buffer (lock-free —
//     each thread owns its ring exclusively; the registry of rings is only
//     locked on first use per thread and at export).
//  3. Bounded memory with drop-oldest semantics: when a ring wraps, the
//     oldest records are overwritten. A long run keeps the *tail* of the
//     story, which is what you want when diagnosing where it got stuck.
//
// Records are stamped with both wall cycles (rdcycles) and simulation time,
// and exported as Chrome trace-event JSON (open in Perfetto /
// ui.perfetto.dev, or chrome://tracing). Channel messages additionally emit
// flow begin/end pairs keyed by a (channel, wire-timestamp) hash, which
// both ends can compute independently — Perfetto renders them as arrows
// from the sending component's slice to the receiving one's.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "util/cycles.hpp"
#include "util/time.hpp"

namespace splitsim::obs {

// ---- record format --------------------------------------------------------

enum class TraceKind : std::uint16_t {
  kInstant = 0,    ///< point event at t0
  kSpan = 1,       ///< complete span [t0, t1] (Chrome "X" event)
  kFlowBegin = 2,  ///< message left a component (Chrome "s"), arg = flow id
  kFlowEnd = 3,    ///< message delivered (Chrome "f"), arg = flow id
  kCounter = 4,    ///< sampled counter value (Chrome "C"), arg = value
};

/// Fixed-size binary trace record (48 bytes). `track` selects the Perfetto
/// track (we use one per component simulator); `name` is an interned string
/// id; `sim` is the simulation time associated with the event.
struct TraceRecord {
  std::uint64_t t0 = 0;   ///< wall cycles (span begin / event time)
  std::uint64_t t1 = 0;   ///< wall cycles (span end; unused otherwise)
  std::uint64_t sim = 0;  ///< simulation time (ps)
  std::uint64_t arg = 0;  ///< flow id / user payload
  std::uint32_t name = 0;
  std::uint32_t track = 0;
  TraceKind kind = TraceKind::kInstant;
  std::uint16_t pad = 0;
};
static_assert(sizeof(TraceRecord) == 48, "trace records are fixed 48-byte binary");

/// Well-known interned span/event names (stable ids; intern_name() hands
/// out ids starting at kNameFirstDynamic).
enum : std::uint32_t {
  kNameAdvance = 1,   ///< one component batch (advance_once)
  kNameSyncWait = 2,  ///< threaded runner blocked on a peer horizon
  kNameParked = 3,    ///< pooled runner: component parked waiting for work
  kNameDeliver = 4,   ///< adapter rx batch (deliver_all)
  kNameMsg = 5,       ///< channel data message (flow arrows)
  kNameProgress = 6,  ///< reporter progress tick
  kNameFirstDynamic = 16,
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
void record(const TraceRecord& r);
}  // namespace detail

/// True while a trace is being recorded. The ONLY check on disabled hot
/// paths — keep call sites shaped as `if (tracing_enabled()) { ... }`.
inline bool tracing_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Start recording into fresh per-thread rings of `ring_capacity` records
/// each (rounded up to a power of two). Resets any previous trace.
void start_tracing(std::size_t ring_capacity = std::size_t{1} << 16);

/// Qualify this process's trace shard: `pid` becomes the Chrome-trace pid of
/// every exported event (multi-process runs give each child a distinct rank-
/// derived pid), `name` the process_name metadata. Survives start_tracing();
/// defaults are pid 1 / no name (single-process traces are unchanged).
void set_trace_process(std::uint32_t pid, const std::string& name);

/// Override the wall-clock epoch used by the NEXT start_tracing() (0 resets
/// to "stamp rdcycles() at start"). run_multiprocess captures one rdcycles()
/// before forking and hands it to every child so all shards share a time
/// base exactly (forked children inherit the machine TSC); a cross-machine
/// launcher would instead derive per-host epochs from the transport hello
/// calibration exchange.
void set_trace_epoch(std::uint64_t epoch_tsc);

/// Stop recording. Recorded data stays available for export until the next
/// start_tracing().
void stop_tracing();

/// Intern `name`, returning a stable id usable as a record name or track.
/// Identical strings intern to the same id. Takes a lock — intern at setup
/// time, not on the hot path.
std::uint32_t intern_name(const std::string& name);

/// Name for an interned id ("?" if unknown).
std::string name_of(std::uint32_t id);

/// Flow id both channel ends can derive independently: sender hashes the
/// wire timestamp it just sent, receiver hashes the wire timestamp of the
/// message it delivers. Data timestamps are strictly increasing per
/// channel, so (channel, wire_ts) identifies one message.
inline std::uint64_t flow_id(std::uint64_t channel_hash, std::uint64_t wire_ts) {
  std::uint64_t x = channel_hash ^ (wire_ts + 0x9E3779B97F4A7C15ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// ---- recording (cheap no-ops while disabled) ------------------------------

inline void record_instant(std::uint32_t name, std::uint32_t track, SimTime sim,
                           std::uint64_t arg = 0) {
  if (!tracing_enabled()) return;
  std::uint64_t now = rdcycles();
  detail::record({now, now, sim, arg, name, track, TraceKind::kInstant, 0});
}

inline void record_span(std::uint32_t name, std::uint32_t track, SimTime sim,
                        std::uint64_t t0, std::uint64_t t1, std::uint64_t arg = 0) {
  if (!tracing_enabled()) return;
  detail::record({t0, t1, sim, arg, name, track, TraceKind::kSpan, 0});
}

inline void record_flow(bool begin, std::uint32_t track, SimTime sim, std::uint64_t id) {
  if (!tracing_enabled()) return;
  std::uint64_t now = rdcycles();
  detail::record({now, now, sim, id, kNameMsg, track,
                  begin ? TraceKind::kFlowBegin : TraceKind::kFlowEnd, 0});
}

/// Sampled counter value — exported as a Chrome "C" event so Perfetto draws
/// it as a counter track (trunk bytes/frames, futex parks, ...).
inline void record_counter(std::uint32_t name, std::uint32_t track, SimTime sim,
                           std::uint64_t value) {
  if (!tracing_enabled()) return;
  std::uint64_t now = rdcycles();
  detail::record({now, now, sim, value, name, track, TraceKind::kCounter, 0});
}

// ---- export ---------------------------------------------------------------

struct TraceStats {
  std::uint64_t recorded = 0;  ///< total records written (incl. overwritten)
  std::uint64_t retained = 0;  ///< records currently held in rings
  std::uint64_t dropped = 0;   ///< records lost to drop-oldest overwrite
  std::size_t threads = 0;     ///< per-thread rings in use
};
TraceStats trace_stats();

/// Render the whole trace as Chrome trace-event JSON (the
/// {"traceEvents": [...]} object form). Spans become complete "X" events,
/// instants "i", flows "s"/"f" pairs; each referenced track gets a
/// thread_name metadata record carrying the component name. Timestamps are
/// microseconds relative to start_tracing().
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`, creating parent directories.
void write_chrome_trace(const std::string& path);

}  // namespace splitsim::obs
