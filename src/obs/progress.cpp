#include "obs/progress.hpp"

#include <algorithm>
#include <cstdio>

namespace splitsim::obs {

namespace {

std::string fmt_sim(SimTime t) {
  char buf[48];
  const double ns = static_cast<double>(t) / 1e3;
  if (ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ns / 1e9);
  } else if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

std::string fmt_wall(double s) {
  char buf[48];
  if (s >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%dm%04.1fs", static_cast<int>(s / 60.0),
                  s - 60.0 * static_cast<int>(s / 60.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", s);
  }
  return buf;
}

}  // namespace

std::string format_progress(SimTime sim_now, SimTime sim_end, double wall_seconds) {
  const double sim_s = static_cast<double>(sim_now) / 1e12;
  const double speed = wall_seconds > 0.0 ? sim_s / wall_seconds : 0.0;
  std::string line = "[splitsim] sim " + fmt_sim(sim_now);
  if (sim_end > 0) {
    const double pct =
        100.0 * static_cast<double>(sim_now) / static_cast<double>(sim_end);
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (%5.1f%%)", std::min(pct, 100.0));
    line += buf;
  }
  line += " | wall " + fmt_wall(wall_seconds);
  char buf[48];
  std::snprintf(buf, sizeof(buf), " | %.3gx realtime", speed);
  line += buf;
  if (sim_end > sim_now && speed > 0.0) {
    const double remaining_sim_s = static_cast<double>(sim_end - sim_now) / 1e12;
    line += " | eta " + fmt_wall(remaining_sim_s / speed);
  }
  return line;
}

void Reporter::start(ProgressConfig cfg) {
  stop();
  if (cfg.progress_period_ms == 0 && cfg.metrics_period_ms == 0) return;
  cfg_ = std::move(cfg);
  stop_requested_ = false;
  series_.clear();
  lines_ = 0;
  t0_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { run(); });
}

void Reporter::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Final line + snapshot: even a run shorter than one period reports once.
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  if (cfg_.progress_period_ms) emit_progress(wall);
  if (cfg_.metrics_period_ms && cfg_.registry) {
    MetricsSnapshot s = cfg_.registry->snapshot(wall);
    if (cfg_.on_snapshot) {
      cfg_.on_snapshot(cfg_.sim_now ? cfg_.sim_now() : 0, wall, s);
    }
    series_.push_back(std::move(s));
  }
}

std::vector<MetricsSnapshot> Reporter::take_series() {
  std::vector<MetricsSnapshot> out;
  std::lock_guard<std::mutex> g(mu_);
  out.swap(series_);
  return out;
}

void Reporter::run() {
  // Tick at the gcd-ish finer of the two periods; each kind fires when its
  // own deadline passes. Keeps one thread and one clock for both duties.
  const std::uint64_t p_prog = cfg_.progress_period_ms;
  const std::uint64_t p_metr = cfg_.metrics_period_ms;
  std::uint64_t tick = 0;
  if (p_prog && p_metr) {
    tick = std::min(p_prog, p_metr);
  } else {
    tick = p_prog ? p_prog : p_metr;
  }
  auto next_prog = t0_ + std::chrono::milliseconds(p_prog);
  auto next_metr = t0_ + std::chrono::milliseconds(p_metr);
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lk, std::chrono::milliseconds(tick),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    const auto now = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(now - t0_).count();
    if (p_prog && now >= next_prog) {
      lk.unlock();
      emit_progress(wall);
      lk.lock();
      next_prog += std::chrono::milliseconds(p_prog);
      if (next_prog < now) next_prog = now + std::chrono::milliseconds(p_prog);
    }
    if (p_metr && now >= next_metr && cfg_.registry) {
      MetricsSnapshot s = cfg_.registry->snapshot(wall);
      if (cfg_.on_snapshot) {
        // Hook runs unlocked: it may write a control-channel frame or
        // record counter trace events — neither belongs under mu_.
        lk.unlock();
        cfg_.on_snapshot(cfg_.sim_now ? cfg_.sim_now() : 0, wall, s);
        lk.lock();
      }
      series_.push_back(std::move(s));
      next_metr += std::chrono::milliseconds(p_metr);
      if (next_metr < now) next_metr = now + std::chrono::milliseconds(p_metr);
    }
  }
}

void Reporter::emit_progress(double wall_seconds) {
  const SimTime now = cfg_.sim_now ? cfg_.sim_now() : 0;
  ++lines_;
  if (cfg_.on_progress) {
    cfg_.on_progress(now, wall_seconds);
    return;
  }
  const std::string line = format_progress(now, cfg_.sim_end, wall_seconds);
  if (cfg_.sink) {
    cfg_.sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace splitsim::obs
