// Cross-process trace merging + critical-path analysis.
//
// A multi-process run leaves one Chrome-trace shard per child, each
// process-qualified (distinct pid, process_name metadata, shared wall-clock
// epoch — see obs::set_trace_process / set_trace_epoch). merge_trace_shards
// folds them into ONE Perfetto-loadable trace:
//
//  * events concatenate and re-sort by timestamp; per-shard thread_name /
//    process_name metadata is preserved (intern ids are per-process, so a
//    track id only means something together with its shard's pid);
//  * flow ids are channel-hash + wire-timestamp hashes both trunk ends
//    derive independently, so sender "s" and receiver "f" records pair up
//    ACROSS shards and Perfetto draws one arrow over the process boundary;
//  * a post-pass walks blocked-wait attribution (sync_wait spans carry the
//    peer they waited on in args.wait_on) and reports the limiting chain of
//    components per epoch — the cross-process generalization of the WTPG
//    bottleneck diagnosis — appended as a synthetic "critical-path" track
//    (pid 0) and returned for summary.json.
//
// Used by the splitsim_tracemerge tool and invoked automatically by the
// run_multiprocess parent after reaping its children.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace splitsim::obs {

struct CriticalPathEpoch {
  double t0_us = 0.0;
  double t1_us = 0.0;
  /// Wait chain, waiter first: chain[i] spent the epoch's dominant wait
  /// blocked on chain[i+1]. The last element is the epoch's limiter.
  std::vector<std::string> chain;
  std::string limiter;
  double wait_us = 0.0;  ///< wait attributed along the chain in this epoch
};

struct CriticalPathReport {
  std::vector<CriticalPathEpoch> epochs;
  /// Component limiting the run overall (largest wait attributed across
  /// epochs); empty when no attributed waits were recorded.
  std::string limiter;
  double total_wait_us = 0.0;
};

struct MergeOptions {
  std::size_t critical_path_epochs = 8;  ///< clamped to >= 1
  bool emit_critical_path_track = true;  ///< append the pid-0 Perfetto track
};

struct MergeResult {
  std::size_t shards = 0;
  std::size_t events = 0;  ///< events written to the merged trace
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::size_t flow_pairs = 0;  ///< matched s/f flow-id pairs (all)
  /// Pairs whose begin and end sit in different shards (pids): one per
  /// message that crossed a trunk with tracing on both sides.
  std::size_t cross_process_flow_pairs = 0;
  CriticalPathReport critical_path;
};

/// Merge `shard_paths` into one Chrome trace at `out_path` (parent dirs are
/// created). Throws std::runtime_error on unreadable/malformed shards.
MergeResult merge_trace_shards(const std::vector<std::string>& shard_paths,
                               const std::string& out_path,
                               const MergeOptions& opts = {});

/// Render a critical-path report as a JSON object (for summary.json).
std::string critical_path_json(const CriticalPathReport& report);

}  // namespace splitsim::obs
