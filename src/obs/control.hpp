// Fleet metrics + progress over a control trunk.
//
// run_multiprocess gives every child one end of a SOCK_SEQPACKET unix
// socketpair. The child's obs reporter routes its progress ticks and metric
// snapshots into small binary frames on that fd (ObsConfig::on_progress /
// on_snapshot) instead of printing to the inherited tty; the parent's
// FleetAggregator thread polls all child fds, folds the updates into
// fleet-wide gauges (fleet.sim_time_min_ns, per-process speedup, summed
// trunk bytes/frames/sync counts, shm futex-park counts) and renders ONE
// live progress line and one merged metrics series.
//
// Frame format (host-endian — the control channel never leaves the machine;
// a multi-machine launcher would frame these over its socket trunks, whose
// wire format is already portable):
//
//   u32 length | u8 kind | u8 pad[3] | u32 rank | u64 sim_time
//   f64 wall_seconds | u32 n | n * { u16 name_len | name | f64 value }
//
// SEQPACKET preserves message boundaries and makes sends atomic, so the
// child can write best-effort non-blocking: a full buffer drops the frame
// (observability must never backpressure the simulation).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace splitsim::obs {

enum : std::uint8_t {
  kCtrlProgress = 1,  ///< periodic progress tick (no values)
  kCtrlSnapshot = 2,  ///< metrics snapshot delta (trunk gauges)
};

struct ControlUpdate {
  std::uint32_t rank = 0;
  std::uint8_t kind = kCtrlProgress;
  SimTime sim_time = 0;
  double wall_seconds = 0.0;
  std::vector<std::pair<std::string, double>> values;
};

/// Encode/decode one control frame (exposed for tests). Decode returns
/// false on truncated or malformed input.
std::vector<std::uint8_t> encode_control_update(const ControlUpdate& u);
bool decode_control_update(const std::uint8_t* data, std::size_t len, ControlUpdate& out);

/// Create a SOCK_SEQPACKET unix socketpair (fd[0] = parent end, fd[1] =
/// child end). Returns false (errno set) on failure.
bool control_socketpair(int fd[2]);

/// Best-effort non-blocking send: encodes and writes one frame; silently
/// drops it when the buffer is full or the peer is gone.
void send_control_update(int fd, const ControlUpdate& u);

/// Latest known state of one child process, as seen over the control trunk.
struct FleetProcess {
  std::string name;          ///< process-group name
  SimTime sim_time = 0;      ///< child's slowest component
  double wall_seconds = 0.0;
  double speed = 0.0;        ///< sim seconds per wall second
  bool reported = false;     ///< any update received
  bool finished = false;     ///< EOF on the control fd (child exited)
  std::vector<std::pair<std::string, double>> trunk;  ///< latest trunk.* gauges
};

/// Parent-side aggregator: one thread polling every child's control fd,
/// emitting the fleet progress line and building the merged metrics series.
class FleetAggregator {
 public:
  struct Options {
    std::uint64_t progress_period_ms = 0;  ///< 0 = no progress lines
    std::uint64_t metrics_period_ms = 0;   ///< 0 = no fleet snapshots
    SimTime sim_end = 0;
    /// Progress line sink; defaults to stderr when empty.
    std::function<void(const std::string&)> sink;
  };

  FleetAggregator() = default;
  ~FleetAggregator() { stop(); }
  FleetAggregator(const FleetAggregator&) = delete;
  FleetAggregator& operator=(const FleetAggregator&) = delete;

  /// Take ownership of the parent-end fds (closed on stop) and start the
  /// poll thread. `names[i]` labels the process behind `fds[i]` (rank i).
  void start(std::vector<int> fds, std::vector<std::string> names, Options opts);

  /// Drain remaining frames, emit a final progress line, take a final fleet
  /// snapshot, join, and close the fds. Idempotent.
  void stop();

  bool running() const { return thread_.joinable(); }

  /// Fleet snapshot series collected so far (moves out; call after stop()).
  std::vector<MetricsSnapshot> take_series();

  /// Per-process state (copy; call after stop() for final values).
  std::vector<FleetProcess> processes() const;

 private:
  void run();
  void drain_fd(std::size_t idx);
  MetricsSnapshot fleet_snapshot(double wall) const;  ///< callers hold mu_
  void emit_progress(double wall);                    ///< callers hold mu_

  Options opts_;
  std::vector<int> fds_;
  std::vector<FleetProcess> procs_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::vector<MetricsSnapshot> series_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace splitsim::obs
