// Minimal JSON *reading* for the obs layer (json.hpp is write-only).
//
// The trace merger re-reads the Chrome trace shards each child process
// exported; this parser covers exactly the JSON the exporters emit —
// objects, arrays, strings with the escapes json_escape produces, numbers,
// true/false/null — and is strict about everything else. It is a post-run
// tool-path component, not hot-path code: clarity over speed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace splitsim::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered object members (Chrome trace readers care about
  /// nothing here, but stable order keeps merges diffable).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Member lookup (objects only); nullptr when absent.
  const JsonValue* find(const std::string& key) const;

  /// Convenience accessors with defaults for absent/mistyped members.
  double num(const std::string& key, double fallback = 0.0) const;
  std::string str(const std::string& key, const std::string& fallback = {}) const;
};

/// Parse `text` into `out`. Returns false (with a position-annotated message
/// in `error`) on malformed input.
bool json_parse(const std::string& text, JsonValue& out, std::string& error);

}  // namespace splitsim::obs
