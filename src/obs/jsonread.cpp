#include "obs/jsonread.hpp"

#include <cctype>
#include <cstdlib>

namespace splitsim::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

std::string JsonValue::str(const std::string& key, const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
}

namespace {

struct Parser {
  const std::string& s;
  std::size_t i = 0;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty()) err = what + " at offset " + std::to_string(i);
    return false;
  }

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
      ++i;
    }
  }

  bool literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s.compare(i, n, lit) != 0) return fail(std::string("expected '") + lit + "'");
    i += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (i >= s.size() || s[i] != '"') return fail("expected string");
    ++i;
    out.clear();
    while (i < s.size()) {
      char c = s[i++];
      if (c == '"') return true;
      if (c == '\\') {
        if (i >= s.size()) return fail("truncated escape");
        char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (i + 4 > s.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              char h = s[i++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Exporters only \u-escape control characters; encode the BMP
            // code point as UTF-8 for completeness.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (i >= s.size()) return fail("unexpected end of input");
    char c = s[i];
    if (c == '{') {
      ++i;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (i >= s.size() || s[i] != ':') return fail("expected ':'");
        ++i;
        JsonValue v;
        if (!parse_value(v)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == '}') {
          ++i;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++i;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!parse_value(v)) return false;
        out.array.push_back(std::move(v));
        skip_ws();
        if (i < s.size() && s[i] == ',') {
          ++i;
          continue;
        }
        if (i < s.size() && s[i] == ']') {
          ++i;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* start = s.c_str() + i;
      char* end = nullptr;
      out.kind = JsonValue::Kind::kNumber;
      out.number = std::strtod(start, &end);
      if (end == start) return fail("bad number");
      i += static_cast<std::size_t>(end - start);
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, std::string& error) {
  Parser p{text};
  out = JsonValue{};
  if (!p.parse_value(out)) {
    error = p.err;
    return false;
  }
  p.skip_ws();
  if (p.i != text.size()) {
    error = "trailing garbage at offset " + std::to_string(p.i);
    return false;
  }
  return true;
}

}  // namespace splitsim::obs
