// Always-on cheap metrics for SplitSim runs (the "broad" pillar of the obs
// layer): a registry of named counters, gauges, and log-bucket histograms.
//
// Update paths are single relaxed atomic operations, so simulator threads
// can bump metrics while the progress reporter thread snapshots them. Two
// registration styles:
//  * owned instruments (counter/gauge/histogram): the producer updates the
//    returned object from its own thread (push model; used for values whose
//    underlying state is not safe to read cross-thread, e.g. DES kernel
//    queue sizes and netsim device counters);
//  * polls (register_poll): a callback evaluated at snapshot time on the
//    reporter thread (pull model; ONLY for reads that are already
//    thread-safe, e.g. channel ring occupancy via the SPSC atomics).
//
// Snapshots are cheap (one mutex for the name table, relaxed loads for the
// values) and are serialized periodically into a metrics JSON next to the
// profiler's `.sslog` files.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace splitsim::obs {

/// Monotone counter.
class Counter {
 public:
  void inc(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins gauge (set from the owning thread, read from anywhere).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucket histogram of non-negative integer samples. Bucket `i` covers
/// values with bit width `i`: bucket 0 holds exactly 0, bucket i (i >= 1)
/// holds [2^(i-1), 2^i - 1]. 65 buckets cover the full uint64 range.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  static int bucket_of(std::uint64_t v) { return std::bit_width(v); }
  static std::uint64_t bucket_lo(int i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  static std::uint64_t bucket_hi(int i) {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  void observe(std::uint64_t v) {
    b_[static_cast<std::size_t>(bucket_of(v))].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t bucket(int i) const {
    return b_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : b_) n += b.load(std::memory_order_relaxed);
    return n;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> b_{};
};

/// One observed value in a snapshot.
struct SnapshotHist {
  std::string name;
  std::uint64_t count = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
};

struct MetricsSnapshot {
  double wall_seconds = 0.0;  ///< since the reporter/run started
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;  ///< owned + polled
  std::vector<SnapshotHist> histograms;

  /// Value of a counter/gauge by name (0 when absent; tests convenience).
  double value(const std::string& name) const;
};

class Registry {
 public:
  /// Find-or-create; returned references stay valid for the registry's
  /// lifetime (deque storage, no reallocation of elements).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Register (or replace) a pull-model gauge evaluated at snapshot time on
  /// the snapshotting thread. `fn` must only perform thread-safe reads.
  void register_poll(const std::string& name, std::function<double()> fn);

  MetricsSnapshot snapshot(double wall_seconds = 0.0) const;

  /// Drop every instrument and poll (tests / fresh runs).
  void clear();

 private:
  mutable std::mutex mu_;
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> hists_;
  std::vector<std::pair<std::string, std::function<double()>>> polls_;
};

/// Serialize a snapshot series as JSON: {"snapshots":[...]}. Creates parent
/// directories for `path`.
void write_metrics_json(const std::string& path, const std::vector<MetricsSnapshot>& series);
std::string metrics_json(const std::vector<MetricsSnapshot>& series);

}  // namespace splitsim::obs
