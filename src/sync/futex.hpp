// Thin futex wrappers for cross-process parking on shared-memory rings.
//
// A producer that finds a shm ring full parks on a 32-bit word inside the
// segment (FUTEX_WAIT); the consumer bumps the word and wakes it
// (FUTEX_WAKE) after popping. Both operations address memory the two
// processes share through mmap, which is exactly what futexes are for —
// an in-process condvar cannot span address spaces. On non-Linux builds
// the wrappers degrade to "pretend the wait timed out immediately", which
// turns parking back into the adaptive spin/yield policy: correct, just
// less polite to the scheduler.
#pragma once

#include <atomic>
#include <cstdint>

#ifdef __linux__
#include <linux/futex.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace splitsim::sync {

/// Wait until `*word != expected` or `timeout_ns` elapses. Spurious wakeups
/// are allowed (callers always re-check their predicate). Returns false on
/// timeout-or-unsupported, true when woken/changed.
inline bool futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expected,
                       std::uint64_t timeout_ns) {
#ifdef __linux__
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(timeout_ns / 1'000'000'000ull);
  ts.tv_nsec = static_cast<long>(timeout_ns % 1'000'000'000ull);
  long rc = syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT, expected,
                    &ts, nullptr, 0);
  return rc == 0;
#else
  (void)word;
  (void)expected;
  (void)timeout_ns;
  return false;
#endif
}

/// Wake every waiter parked on `word`.
inline void futex_wake_all(std::atomic<std::uint32_t>* word) {
#ifdef __linux__
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE, INT32_MAX, nullptr,
          nullptr, 0);
#else
  (void)word;
#endif
}

}  // namespace splitsim::sync
