// Pluggable data path under sync::Channel.
//
// A Channel's synchronization semantics (timestamps, SYNC/FIN, horizons,
// digests) are transport-independent; what varies is where the two SPSC
// rings live and how a blocked producer parks:
//
//   InProcTransport   both rings on the local heap (the historical layout;
//                     every run mode, both ends in one address space)
//   ShmChannelTransport  rings inside a named POSIX shm segment with futex
//                     parking, so the two ends may be different OS
//                     processes (sync/shm.hpp)
//   SocketTransport   producer writes length-prefixed frames to a TCP
//                     stream; a pump thread on the consumer side feeds a
//                     local staging ring (sync/shm-less, spans machines;
//                     sync/socket.hpp)
//
// The seam is deliberately narrow: a transport supplies per-side rings (or
// a direct send path), says whether it restricts the channel to blocking
// mode, and reports peer death. Channel/ChannelEnd keep all protocol state
// — swapping the transport cannot change simulation results, which is what
// the cross-transport digest-parity tests pin down.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sync/message.hpp"
#include "sync/spsc_ring.hpp"

namespace splitsim::sync {

/// Wire-level counters of one cross-process transport, bumped by the LOCAL
/// sides only (each process reports its own tx; futex counts come from the
/// rings this process parks/wakes on). Exposed to the metrics registry as
/// `trunk.<channel>.*` gauges and to child reports for fleet aggregation.
/// `frame_overhead` / `fixed_frame_bytes` let ChannelEnd::send account
/// bytes-on-the-wire without a virtual call per message: bytes = fixed
/// (shm: one ring slot) or overhead + payload (socket: len prefix + header).
struct WireCounters {
  std::atomic<std::uint64_t> tx_frames{0};  ///< messages sent (incl. sync/fin)
  std::atomic<std::uint64_t> tx_bytes{0};   ///< wire bytes for those frames
  std::atomic<std::uint64_t> tx_syncs{0};   ///< SYNC (null-message) frames
  std::atomic<std::uint64_t> tx_datas{0};   ///< data frames (flow-arrow bearing)
  std::atomic<std::uint64_t> futex_parks{0};  ///< producer futex waits (shm)
  std::atomic<std::uint64_t> futex_wakes{0};  ///< consumer futex wakes (shm)
  /// Hello-time clock calibration: local rdcycles() at hello receipt minus
  /// the peer's rdcycles() stamped into its hello (socket trunks). On one
  /// machine this measures handshake latency; across machines it is the TSC
  /// offset a multi-machine merge would subtract. 0 = no calibration (shm:
  /// forked processes share the TSC and the parent-issued trace epoch).
  std::atomic<std::int64_t> clock_skew_cycles{0};
  std::uint32_t frame_overhead = 0;
  std::uint32_t fixed_frame_bytes = 0;
};

/// Failure in the transport machinery itself: handshake/version mismatch,
/// a peer process dying mid-run, a broken socket. The runtime wraps this
/// into SimulationError{kind=kTransport}; the message always names the
/// channel so failures attribute even when no component is at fault.
class TransportError : public std::runtime_error {
 public:
  TransportError(std::string channel, const std::string& what)
      : std::runtime_error(what), channel_(std::move(channel)) {}
  const std::string& channel() const { return channel_; }

 private:
  std::string channel_;
};

/// Data path of one Channel. `side` is 0 for end_a, 1 for end_b.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual const char* kind() const = 0;

  /// Ring `side` produces into / consumes from. tx_ring may be nullptr for
  /// a side that sends_direct (or is remote); rx_ring must always be a
  /// valid ring for sides that exist locally (the obs reporter polls its
  /// depth even on quiescent ends).
  virtual MessageRing* tx_ring(int side) = 0;
  virtual MessageRing* rx_ring(int side) = 0;

  /// True when the transport supports only ChannelMode::kBlocking (no
  /// spill tiers). All cross-process-capable transports force blocking:
  /// the consumer never shares the producer's thread or worker pool, so
  /// blocking on ring space cannot self-deadlock, while spill queues are
  /// an address-space-local concept.
  virtual bool forces_blocking() const { return false; }

  /// When true for a side, sends bypass tx_ring and go through
  /// send_direct (socket transport: the kernel socket buffer provides the
  /// backpressure). send_direct may throw TransportError.
  virtual bool sends_direct(int /*side*/) const { return false; }
  virtual void send_direct(int /*side*/, const Message& /*msg*/) {}

  /// Bring up background machinery (socket handshake + pump threads, shm
  /// peer registration). Throws TransportError on validation failure.
  /// stop() must be idempotent and safe to call without start().
  virtual void start() {}
  virtual void stop() {}

  /// Non-empty when the transport observed the peer feeding `side`'s
  /// receive direction die before FIN (socket EOF/reset, shm pid probe).
  /// `fin_seen` is whether the local consumer already saw FIN there —
  /// death after FIN is a normal exit, not a failure.
  virtual std::string peer_failure(int /*side*/, bool /*fin_seen*/) { return {}; }

  /// Best-effort notification to the peer process that this side is
  /// aborting (shm: raise the segment's abort word and kick parked
  /// producers). Sockets need nothing: stop() closes the stream and the
  /// peer sees EOF-before-FIN.
  virtual void signal_abort() {}

  /// Wire-level tx/futex counters, or nullptr when this transport does not
  /// count (inproc: no wire). Non-null ⇒ ChannelEnd::send bumps them and
  /// the obs layer registers `trunk.<channel>.*` gauges.
  virtual WireCounters* wire_counters() { return nullptr; }
};

/// The historical layout: both rings on the local heap.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(std::size_t ring_capacity)
      : a_to_b_(ring_capacity), b_to_a_(ring_capacity) {}

  const char* kind() const override { return "inproc"; }
  MessageRing* tx_ring(int side) override { return side == 0 ? &a_to_b_ : &b_to_a_; }
  MessageRing* rx_ring(int side) override { return side == 0 ? &b_to_a_ : &a_to_b_; }

 private:
  // a_to_b: produced by end_a, consumed by end_b (and vice versa).
  MessageRing a_to_b_;
  MessageRing b_to_a_;
};

}  // namespace splitsim::sync
