// SplitSim base adapter (paper §3.2.1, "Base adapter").
//
// An adapter is a component simulator's attachment to one SplitSim channel.
// It owns initialization, synchronization (periodic SYNCs, null messages
// while blocked, FIN at termination) and profiling instrumentation, but is
// not specific to any message protocol: protocol adapters (Ethernet, PCI,
// memory port, trunk, ...) are built on top by choosing message types and
// handlers, without re-implementing the common machinery.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "obs/trace.hpp"
#include "sync/channel.hpp"
#include "sync/counters.hpp"
#include "sync/digest.hpp"
#include "sync/fault.hpp"
#include "util/cycles.hpp"
#include "util/time.hpp"

namespace splitsim::sync {

class Adapter {
 public:
  /// Invoked for each incoming data message at its receive time.
  using Handler = std::function<void(const Message&, SimTime rx_time)>;

  Adapter(std::string name, ChannelEnd& end) : name_(std::move(name)), end_(&end) {}
  virtual ~Adapter() = default;

  Adapter(const Adapter&) = delete;
  Adapter& operator=(const Adapter&) = delete;

  void set_handler(Handler h) { handler_ = std::move(h); }

  const std::string& name() const { return name_; }
  ChannelEnd& end() { return *end_; }
  const ChannelConfig& config() const { return end_->config(); }

  /// Name of the component on the other side (filled in by the runtime for
  /// profiler output).
  const std::string& peer_component() const { return peer_component_; }
  void set_peer_component(std::string p) { peer_component_ = std::move(p); }

  // ---- receive side --------------------------------------------------

  /// Receive time of the oldest pending data message, or kSimTimeMax.
  SimTime head_rx() {
    const Message* m = end_->peek();
    return m == nullptr ? kSimTimeMax : m->timestamp + config().latency;
  }

  /// Local events with time <= in_bound() are safe to execute.
  SimTime in_bound() {
    const Message* m = end_->peek();
    if (m != nullptr) return m->timestamp + config().latency;
    return end_->horizon();
  }

  /// Deliver the oldest pending message if its receive time is <= `now`.
  /// Returns true if a message was delivered.
  bool deliver_one(SimTime now) {
    const Message* m = end_->peek();
    if (m == nullptr || m->timestamp + config().latency > now) return false;
    std::uint64_t c0 = rdcycles();
    digest_.add(hash_event(channel_hash(), *m));
    if (obs::tracing_enabled()) {
      obs::record_flow(false, trace_track_, m->timestamp + config().latency,
                       obs::flow_id(channel_hash(), m->timestamp));
    }
    dispatch(*m, m->timestamp + config().latency);
    end_->consume();
    counters_.rx_msgs++;
    counters_.rx_cycles += rdcycles() - c0;
    return true;
  }

  /// Deliver every pending message with receive time <= `now` in one
  /// batched ring/spill traversal (single atomic acquire per batch; see
  /// ChannelEnd::drain_until). Per-message semantics — digest fold,
  /// dispatch at timestamp + latency, FIFO order — match deliver_one().
  /// Returns the number of messages delivered.
  std::size_t deliver_all(SimTime now) {
    SimTime lat = config().latency;
    if (now < lat) return 0;  // nothing can have a receive time <= now yet
    std::uint64_t c0 = rdcycles();
    std::uint64_t ch = channel_hash();
    std::size_t n = end_->drain_until(now - lat, [&](const Message& m) {
      digest_.add(hash_event(ch, m));
      if (obs::tracing_enabled()) {
        obs::record_flow(false, trace_track_, m.timestamp + lat, obs::flow_id(ch, m.timestamp));
      }
      dispatch(m, m.timestamp + lat);
    });
    if (n != 0) {
      counters_.rx_msgs += n;
      counters_.rx_cycles += rdcycles() - c0;
      obs::record_span(obs::kNameDeliver, trace_track_, now, c0, rdcycles(), n);
    }
    return n;
  }

  /// Order-insensitive fold of every data message delivered through this
  /// adapter; identical across run modes for a deterministic simulation.
  const EventDigest& digest() const { return digest_; }

  // ---- send side -----------------------------------------------------

  /// Simulation time at which the next periodic SYNC must be emitted.
  /// Due times snap to the global `interval` grid: peers with equal
  /// intervals emit syncs at the same instants, so a component with many
  /// channels (e.g., a memory process serving dozens of cores) handles one
  /// batched sync round per window instead of one batch per peer. The
  /// interval is read through the channel's live override (adaptive
  /// orchestration may retune it mid-run); any interval in [1, latency]
  /// keeps (last_sent/I + 1)*I strictly ahead of last_sent, so re-gridding
  /// mid-run never stalls or reorders the wire.
  SimTime next_sync_due() const {
    if (!end_->has_sent()) return 0;
    SimTime interval = end_->effective_sync_interval();
    return (end_->last_sent() / interval + 1) * interval;
  }

  /// Emit a periodic SYNC if due at `now`.
  void maybe_sync(SimTime now) {
    if (next_sync_due() <= now) send_sync(now);
  }

  void send_sync(SimTime ts) {
    Message m;
    m.timestamp = ts;
    m.type = static_cast<std::uint16_t>(MsgType::kSync);
    counters_.tx_cycles += end_->send(m);
    counters_.tx_syncs++;
  }

  /// Null message while blocked: promises we send nothing before `promise`.
  /// No-op unless it would actually advance the peer's horizon.
  void send_null(SimTime promise) {
    if (end_->can_promise(promise)) send_sync(promise);
  }

  /// Terminal message: peer's horizon becomes unbounded.
  void send_fin() {
    Message m;
    m.timestamp = end_->has_sent() ? end_->last_sent() + 1 : 0;
    m.type = static_cast<std::uint16_t>(MsgType::kFin);
    end_->send(m);
  }

  /// Send a data message of `type` with a POD payload at time `now`.
  template <typename T>
  void send(std::uint16_t type, const T& payload, SimTime now, std::uint16_t subchannel = 0) {
    Message m;
    m.timestamp = now;
    m.type = type;
    m.subchannel = subchannel;
    m.store(payload);
    send_msg(m);
  }

  /// Send a payload-free data message.
  void send(std::uint16_t type, SimTime now, std::uint16_t subchannel = 0) {
    Message m;
    m.timestamp = now;
    m.type = type;
    m.subchannel = subchannel;
    send_msg(m);
  }

  void send_msg(Message m) {
    if (fault_ != nullptr) {
      // Decisions are drawn per data message in send order, which is a pure
      // function of the simulation — faulted runs replay across run modes.
      FaultDecision d = fault_->decide();
      if (d.drop) return;
      m.timestamp += d.delay;
      if (d.duplicate) send_wire(m);  // copy gets the +1 ps monotonic bump
    }
    send_wire(m);
  }

  // ---- fault injection -------------------------------------------------

  /// Install deterministic send-side fault injection (sync/fault.hpp). Call
  /// before the run starts; no-op for a configuration with no active fault.
  void enable_fault_injection(const ChannelFaultConfig& cfg, std::uint64_t seed) {
    if (cfg.any()) fault_ = std::make_unique<ChannelFaultInjector>(cfg, seed);
  }

  /// Injector counters, or nullptr when fault injection is not enabled.
  const ChannelFaultInjector* fault_injector() const { return fault_.get(); }

  // ---- profiling -----------------------------------------------------

  ProfCounters& counters() { return counters_; }
  const ProfCounters& counters() const { return counters_; }
  void add_wait_cycles(std::uint64_t c) { counters_.sync_wait_cycles += c; }

  /// Perfetto track (the owning component's) for trace records.
  void set_trace_track(std::uint32_t t) { trace_track_ = t; }
  std::uint32_t trace_track() const { return trace_track_; }

  /// Interned track id of the peer component (wait attribution: sync_wait
  /// spans blocked on this adapter carry it so the trace names the limiter).
  void set_peer_trace_track(std::uint32_t t) { peer_trace_track_ = t; }
  std::uint32_t peer_trace_track() const { return peer_trace_track_; }

 protected:
  /// Protocol adapters override to demultiplex; default calls the handler.
  virtual void dispatch(const Message& m, SimTime rx_time) {
    if (handler_) handler_(m, rx_time);
  }

 private:
  std::uint64_t channel_hash() {
    if (channel_hash_ == 0) channel_hash_ = fnv1a(end_->channel_name());
    return channel_hash_;
  }

  void send_wire(const Message& m) {
    std::uint64_t c0 = rdcycles();
    std::uint64_t spin = end_->send(m);
    counters_.tx_cycles += (rdcycles() - c0) + spin;
    counters_.tx_msgs++;
    if (obs::tracing_enabled()) {
      // last_sent() right after a data send is the (possibly bumped) wire
      // timestamp — exactly what the receiver sees, so both ends derive the
      // same flow id independently.
      obs::record_flow(true, trace_track_, end_->last_sent(),
                       obs::flow_id(channel_hash(), end_->last_sent()));
    }
  }

  std::string name_;
  std::string peer_component_;
  ChannelEnd* end_;
  Handler handler_;
  ProfCounters counters_;
  EventDigest digest_;
  std::unique_ptr<ChannelFaultInjector> fault_;  ///< null = injection off
  std::uint64_t channel_hash_ = 0;
  std::uint32_t trace_track_ = 0;
  std::uint32_t peer_trace_track_ = 0;
};

}  // namespace splitsim::sync
