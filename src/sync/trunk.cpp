#include "sync/trunk.hpp"

#include <stdexcept>

namespace splitsim::sync {

TrunkSubPort TrunkAdapter::subport(std::uint16_t id, Handler handler) {
  auto [it, inserted] = sub_handlers_.emplace(id, std::move(handler));
  if (!inserted) throw std::logic_error("TrunkAdapter: duplicate sub-channel id");
  return TrunkSubPort(this, id);
}

void TrunkAdapter::dispatch(const Message& m, SimTime rx_time) {
  auto it = sub_handlers_.find(m.subchannel);
  if (it == sub_handlers_.end()) {
    throw std::logic_error("TrunkAdapter: message for unknown sub-channel " +
                           std::to_string(m.subchannel));
  }
  it->second(m, rx_time);
}

}  // namespace splitsim::sync
