// Shared-memory channel transport: the SimBricks process model.
//
// The two SPSC rings of a channel live inside a named POSIX shm segment
// (shm_open + mmap) instead of the local heap, so the producer and consumer
// ends may be *different OS processes*. Blocked producers park on a futex
// word inside the segment (see RingState / sync/futex.hpp) — the
// cross-process replacement for in-process condvars.
//
// Segment layout (all offsets 64-byte aligned):
//
//   ShmHeader          magic / version / wire format / channel identity /
//                      ready flag / per-side pids / cooperative abort word
//   RingState a2b      indices + park words, produced by end_a
//   Message[cap] a2b
//   RingState b2a      produced by end_b
//   Message[cap] b2a
//
// One side *creates* the segment (O_CREAT|O_EXCL, ftruncate, init, then
// ready=1); the other *opens* it, waiting for ready with a timeout, and
// validates every identity field — magic, version, slot size, ring
// capacity, channel-name hash, channel-map hash, latency. Any mismatch is
// a TransportError naming the channel: two processes that disagree about
// the wire format must fail loudly before a single message moves.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "sync/transport.hpp"

namespace splitsim::sync {

struct ShmChannelParams {
  /// POSIX shm name ("/..."); see shm_segment_name().
  std::string shm_name;
  /// Channel name, for identity validation and error attribution.
  std::string channel_name;
  /// Fold of the trunk subport map carried over this channel (0 for plain
  /// adapters). Both processes must agree or the handshake fails.
  std::uint64_t map_hash = 0;
  /// Channel latency in time units, validated across processes.
  std::uint64_t latency = 0;
  std::size_t ring_capacity = 512;
  /// True on exactly one side: create + initialize the segment (and unlink
  /// it again on stop()). The other side opens and validates.
  bool create = false;
  /// Which end runs in this process: 0, 1, or -1 for both (single-process
  /// transport swap, e.g. the digest-parity tests).
  int local_side = -1;
  /// How long the opener waits for the creator's segment / ready flag.
  std::uint64_t open_timeout_ms = 10'000;
};

/// Derive the segment name for one channel of one run: "/ss.<run>.<hash>".
/// Short and shell-safe whatever the channel name contains.
std::string shm_segment_name(const std::string& run_id, const std::string& channel_name);

class ShmChannelTransport final : public Transport {
 public:
  /// Creates or opens+validates the segment. Throws TransportError on any
  /// identity mismatch or open timeout.
  explicit ShmChannelTransport(const ShmChannelParams& params);
  ~ShmChannelTransport() override;

  const char* kind() const override { return "shm"; }
  MessageRing* tx_ring(int side) override;
  MessageRing* rx_ring(int side) override;
  bool forces_blocking() const override { return true; }

  /// Registers the local side's pid in the header (peer-death probes).
  void start() override;
  /// Unregisters; the creating side also unlinks the segment name.
  void stop() override;

  std::string peer_failure(int side, bool fin_seen) override;

  /// Raise the segment's cooperative abort word so the peer process fails
  /// fast instead of discovering our death via the pid probe.
  void signal_abort() override;
  bool abort_signalled() const;

  WireCounters* wire_counters() override { return &wire_; }

 private:
  struct Mapping;
  ShmChannelParams params_;
  std::unique_ptr<Mapping> map_;
  std::unique_ptr<MessageRing> ring_[2];  ///< [0] = a_to_b, [1] = b_to_a
  WireCounters wire_;
  bool stopped_ = false;
};

}  // namespace splitsim::sync
