// Adaptive wait policy for blocked producers and runners.
//
// SplitSim used to spin unconditionally while waiting (for ring space or for
// a peer's horizon to advance). That is the right call when components ==
// cores, but burns a core per waiter as soon as components are multiplexed
// over fewer workers (RunMode::kPooled) or the machine is oversubscribed.
// WaitState escalates through three phases instead:
//   1. spin   — cpu_relax() busy iterations (cheap, keeps the cache warm),
//   2. yield  — give the core to another runnable thread,
//   3. park   — timed sleeps with exponential backoff (no busy spin).
// Callers attribute the full wall-clock wait to the profiler counters as
// before, so WTPG/ProfCounters output stays meaningful: a parked waiter
// reports the same "cycles blocked on synchronization" a spinning one would.
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>

#include "util/cycles.hpp"

namespace splitsim::sync {

struct WaitPolicy {
  std::uint32_t spin_iters = 64;    ///< phase 1: busy cpu_relax() rounds
  std::uint32_t yield_iters = 16;   ///< phase 2: sched_yield rounds
  std::chrono::nanoseconds park_initial{2'000};  ///< phase 3: first sleep
  std::chrono::nanoseconds park_max{200'000};    ///< backoff cap
};

/// Process-wide default policy (tests may tighten it).
inline const WaitPolicy& default_wait_policy() {
  static const WaitPolicy p{};
  return p;
}

/// One wait session: call step() between re-checks of the wait condition.
class WaitState {
 public:
  explicit WaitState(const WaitPolicy& policy = default_wait_policy())
      : policy_(&policy), park_next_(policy.park_initial) {}

  /// Perform one adaptive wait step (spin, yield, or park).
  void step() {
    if (iter_ < policy_->spin_iters) {
      cpu_relax();
    } else if (iter_ < policy_->spin_iters + policy_->yield_iters) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(park_next_);
      park_next_ = std::min(park_next_ * 2, policy_->park_max);
      ++parks_;
    }
    ++iter_;
  }

  /// Progress was observed: restart the escalation from the spin phase.
  void reset() {
    iter_ = 0;
    park_next_ = policy_->park_initial;
  }

  std::uint64_t parks() const { return parks_; }

 private:
  const WaitPolicy* policy_;
  std::uint32_t iter_ = 0;
  std::uint64_t parks_ = 0;
  std::chrono::nanoseconds park_next_;
};

}  // namespace splitsim::sync
