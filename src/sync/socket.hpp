// Socket trunk transport: a channel carried over a TCP stream.
//
// This is the multi-machine (and multi-process-without-shm) data path: the
// producer side serializes each Message into a length-prefixed frame and
// writes it straight to a connected socket from the component thread — the
// kernel socket buffer is the backpressure, replacing the full-ring wait. A
// per-direction pump thread on the consumer side reads frames and feeds a
// local staging MessageRing, so the consuming ChannelEnd sees an ordinary
// SPSC ring and none of the protocol machinery changes.
//
// Wire format (little-endian, fixed 256-byte Message slots):
//
//   hello frame (once per direction, before any data):
//     u64 magic "SplTrk01" | u32 version | u32 slot_bytes
//     u64 channel_hash | u64 map_hash | u64 latency
//     u32 staging_capacity | u32 pad | u64 reserved[2]        (64 bytes)
//
//   data frame:
//     u32 length N (= 16 + payload size)
//     u64 timestamp | u16 type | u16 subchannel | u32 size | payload[size]
//
// The hello is validated field by field — magic, version, slot size,
// channel identity, trunk channel-map hash, latency — and any mismatch
// raises TransportError naming the channel: fail loudly at connect time,
// never decode garbage. EOF/reset *before* the peer's FIN passed through
// is peer death and is reported via peer_failure(); EOF after FIN is the
// normal end of a run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "sync/transport.hpp"

namespace splitsim::sync {

// ---- plumbing helpers (used by orch/proc and the launcher) --------------

/// Listening IPv4 socket on 127.0.0.1 with an ephemeral port; returns the
/// fd and stores the chosen port. Throws TransportError("") on failure.
int tcp_listen_loopback(std::uint16_t& port_out);

/// Accept one connection with a timeout (ms). Returns the connected fd;
/// throws TransportError on timeout/error. Closes nothing.
int tcp_accept(int listen_fd, std::uint64_t timeout_ms, const std::string& channel);

/// Connect to host:port, retrying until the deadline (the peer's listener
/// may not be up yet). Throws TransportError on timeout.
int tcp_connect(const std::string& host, std::uint16_t port, std::uint64_t timeout_ms,
                const std::string& channel);

struct SocketChannelParams {
  std::string channel_name;
  std::uint64_t map_hash = 0;
  std::uint64_t latency = 0;
  /// Staging-ring capacity on the receive side.
  std::size_t ring_capacity = 512;
  /// Connected stream socket per side; -1 = that side is remote. The
  /// transport takes ownership of the fds. local fd[0] carries end_a's
  /// traffic (tx frames out, end_a's rx frames in), fd[1] end_b's.
  int fd[2] = {-1, -1};
  std::uint64_t handshake_timeout_ms = 10'000;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketChannelParams params);
  ~SocketTransport() override;

  const char* kind() const override { return "socket"; }
  /// Producers write frames directly; there is no tx ring.
  MessageRing* tx_ring(int) override { return nullptr; }
  MessageRing* rx_ring(int side) override;
  bool forces_blocking() const override { return true; }
  bool sends_direct(int side) const override { return params_.fd[side] >= 0; }
  void send_direct(int side, const Message& msg) override;

  /// Exchange + validate hellos on every local side, then spawn the pump
  /// threads. Throws TransportError on mismatch or handshake timeout.
  void start() override;
  void stop() override;

  std::string peer_failure(int side, bool fin_seen) override;

  WireCounters* wire_counters() override { return &wire_; }

 private:
  void pump(int side);
  void record_failure(int side, const std::string& what);

  SocketChannelParams params_;
  std::unique_ptr<MessageRing> staging_[2];  ///< rx ring per side
  WireCounters wire_;
  std::thread pump_[2];
  std::atomic<bool> stop_{false};
  std::atomic<bool> fin_pumped_[2]{};
  mutable std::mutex failure_mu_;
  std::string failure_[2];  ///< peer-death diagnostics per side
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace splitsim::sync
