// SplitSim channels: timestamped, latency-synchronized SPSC message links.
//
// Semantics (inherited from SimBricks):
//   * A message sent at sender simulation time `t` on a channel with latency
//     `L` is processed by the receiver at `t + L`.
//   * Senders emit data messages with strictly increasing timestamps
//     (enforced here by bumping colliding timestamps by 1 ps) and send a
//     SYNC message at least every `sync_interval` of simulation time.
//     SYNCs may tie with the current wire timestamp: they only advance the
//     horizon, and bumping them would leak wall-clock-dependent null-
//     message placement into data timestamps (see ChannelEnd::send).
//   * A receiver may therefore safely advance its local clock to
//     `last_received_timestamp + L`: nothing can arrive earlier.
// This is conservative null-message synchronization with lookahead = link
// latency; parallel execution produces the same simulation results as
// sequential execution.
//
// A channel operates in one of three modes, chosen by the runtime per run:
//   * kBlocking (threaded runs): pure SPSC rings; a producer that finds the
//     ring full waits with the adaptive spin/yield/park policy until the
//     consumer thread drains it.
//   * kSpillSingleThread (coscheduled runs): producer and consumer share one
//     thread, so blocking would deadlock; a full ring overflows into an
//     unbounded spill queue with no locking.
//   * kSpillLocked (pooled runs): M components multiplex over N workers, so
//     a producer must never hold its worker hostage waiting for a consumer
//     that has no worker to run on (or has finished and will never drain its
//     rings). A full ring overflows into a mutex-protected spill queue
//     instead; the common non-full path stays lock-free SPSC.
#pragma once

#include <atomic>
#include <cassert>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "sync/message.hpp"
#include "sync/spsc_ring.hpp"
#include "sync/transport.hpp"
#include "util/time.hpp"

namespace splitsim::sync {

struct ChannelConfig {
  /// Propagation latency; also the synchronization lookahead.
  SimTime latency = 500 * timeunit::ns;
  /// Max simulated-time gap between consecutive messages; 0 means "use the
  /// latency" (the largest value that still guarantees progress).
  SimTime sync_interval = 0;
  /// Ring capacity in 256-byte slots (power of two).
  std::size_t ring_capacity = 512;

  SimTime effective_sync_interval() const {
    SimTime si = sync_interval == 0 ? latency : sync_interval;
    return si < latency ? si : latency;
  }
};

/// How a full transmit ring is handled (see file comment).
enum class ChannelMode {
  kBlocking,           ///< threaded: wait (spin/yield/park) for ring space
  kSpillSingleThread,  ///< coscheduled: unbounded spill, no locking
  kSpillLocked,        ///< pooled: unbounded spill behind a mutex
};

/// Thrown out of a blocking send when the run's abort flag trips: the
/// consumer of this ring has failed and will never drain it, so waiting for
/// ring space would hang forever. The runner treats this as a *secondary*
/// failure — it unwinds the sending thread without overwriting the original
/// error that tripped the abort.
class AbortedError : public std::runtime_error {
 public:
  explicit AbortedError(const std::string& channel)
      : std::runtime_error("send on channel '" + channel + "' aborted: run is failing") {}
};

class Channel;

/// One endpoint of a channel: produces into one ring, consumes the other.
/// Not thread-safe per endpoint — exactly one component owns each end.
class ChannelEnd {
 public:
  const ChannelConfig& config() const;
  const std::string& channel_name() const;
  Channel& channel() { return *channel_; }

  // ---- producer side -------------------------------------------------
  /// Send `msg`; data timestamps are bumped to stay strictly increasing,
  /// SYNC/FIN timestamps are clamped up to the wire timestamp (ties
  /// allowed). Blocks (kBlocking mode) or grows the spill queue (spill
  /// modes) when the ring is full. Returns cycles spent on backpressure.
  std::uint64_t send(Message msg);

  /// Highest timestamp sent so far on the wire (data or sync).
  SimTime last_sent() const { return last_sent_; }

  /// True if a sync with timestamp `ts` would advance the peer's horizon.
  bool can_promise(SimTime ts) const { return !sent_anything_ || ts > last_sent_; }

  bool has_sent() const { return sent_anything_; }

  // ---- checkpointing --------------------------------------------------
  /// Enable the sender-side in-flight window: every data send is recorded
  /// as (wire timestamp, event hash) so inflight_at() can summarize the
  /// messages in flight at a checkpoint boundary. Off by default — the send
  /// fast path pays nothing unless a run checkpoints.
  void enable_ckpt_window();

  /// Order-insensitive summary of the data messages in flight at `boundary`
  /// B: sent by a batch at time <= B but received after B (wire timestamp
  /// in (B, B+latency]). Only valid when called with non-decreasing
  /// boundaries from the owning component at a point where no batch at time
  /// <= B can still send (the checkpoint hook point): entries at or before
  /// B are evicted permanently.
  struct InflightSummary {
    std::uint64_t fold = 0;
    std::uint64_t count = 0;
  };
  InflightSummary inflight_at(SimTime boundary);

  // ---- consumer side -------------------------------------------------
  /// Oldest pending *data* message, or nullptr. Pure sync messages are
  /// consumed internally (they only advance the horizon). The pointer stays
  /// valid until consume().
  const Message* peek();

  /// Discard the message returned by peek().
  void consume();

  /// Highest timestamp received so far (data or sync).
  SimTime last_recv() const { return last_recv_; }

  /// Peer promised to terminate: horizon is unbounded. Atomic (relaxed)
  /// only so the process runner's peer-death monitor may read it from
  /// another thread; the consumer thread is the sole writer.
  bool fin_received() const { return fin_received_.load(std::memory_order_relaxed); }

  /// Batched drain: process every pending message whose wire timestamp is
  /// <= `wire_limit` in one ring traversal — a single atomic acquire per
  /// batch (and, in kSpillLocked mode, a single mutex acquisition per
  /// batch) instead of one per message. Sync/FIN messages are consumed
  /// internally regardless of `wire_limit` (they only advance the horizon,
  /// exactly as peek() would); `on_data(const Message&)` is invoked for
  /// each data message in FIFO order. A data message beyond the limit stops
  /// the drain (everything behind it is even newer). Returns the number of
  /// data messages delivered.
  template <typename F>
  std::size_t drain_until(SimTime wire_limit, F&& on_data);

  /// Drain and drop everything pending (threaded-mode termination phase:
  /// keep consuming so still-running peers never block on a full ring).
  std::size_t discard_all();

  // ---- observability (safe to read from the obs reporter thread) -----
  /// Approximate receive-ring occupancy (atomic head/tail difference).
  std::size_t rx_ring_depth() const { return rx_->size(); }
  /// Messages currently parked in the peer's spill queue (spill modes).
  std::size_t rx_spill_depth() const {
    return rx_spill_count_->load(std::memory_order_relaxed);
  }
  /// Sends that found the ring full (then blocked or spilled). Maintained
  /// off the fast path only, read by the metrics reporter.
  std::uint64_t tx_backpressure_stalls() const {
    return tx_stalls_.load(std::memory_order_relaxed);
  }

  /// Time up to which (inclusive) the local simulator may safely advance.
  SimTime horizon() const {
    if (fin_received()) return kSimTimeMax;
    SimTime h = last_recv_ + config().latency;
    return h < last_recv_ ? kSimTimeMax : h;  // overflow guard
  }

  /// Sync interval currently in force on this end: the channel's tuned
  /// override when one is set (adaptive orchestration), otherwise the
  /// configured effective interval. Always within [1, latency], so SYNC
  /// placement stays legal whatever the controller chooses. Defined after
  /// Channel below.
  SimTime effective_sync_interval() const;

 private:
  friend class Channel;
  ChannelEnd() = default;

  bool push_with_backpressure(const Message& msg, std::uint64_t& spin_cycles);
  const Message* spill_front(bool& from_spill);
  void spill_pop();

  Channel* channel_ = nullptr;
  MessageRing* tx_ = nullptr;  ///< null when the transport sends direct
  MessageRing* rx_ = nullptr;
  Transport* transport_ = nullptr;  ///< rewired by Channel::set_transport
  int side_ = 0;                    ///< 0 = end_a, 1 = end_b
  bool direct_send_ = false;        ///< transport_->sends_direct(side_)
  WireCounters* wire_ = nullptr;    ///< transport_->wire_counters() (cached)
  std::deque<Message>* tx_spill_ = nullptr;  ///< overflow for our sends
  std::deque<Message>* rx_spill_ = nullptr;  ///< peer's overflow (we consume)
  std::atomic<std::size_t>* tx_spill_count_ = nullptr;
  std::atomic<std::size_t>* rx_spill_count_ = nullptr;
  SimTime last_sent_ = 0;       ///< wire timestamp: data + sync + fin
  SimTime last_data_sent_ = 0;  ///< data only; drives the monotonicity bump
  SimTime last_recv_ = 0;
  std::atomic<bool> fin_received_{false};  ///< see fin_received()
  bool sent_anything_ = false;
  bool sent_data_ = false;
  bool peeked_from_spill_ = false;
  // Checkpoint in-flight window (enable_ckpt_window): data sends not yet
  // past a queried boundary, kept in wire-timestamp order by the send
  // monotonicity bump. Bounded by the sends of one checkpoint period:
  // inflight_at() evicts everything at or before its boundary.
  struct CkptSend {
    SimTime ts;
    std::uint64_t hash;
  };
  bool ckpt_window_enabled_ = false;
  std::uint64_t ckpt_channel_hash_ = 0;
  std::deque<CkptSend> ckpt_window_;
  /// Full-ring sends; atomic only so the reporter may read it live.
  std::atomic<std::uint64_t> tx_stalls_{0};
  /// Reused batch buffer for spilled messages moved out under the lock in
  /// drain_until (dispatching under spill_mu_ could deadlock: a handler
  /// sending on this channel takes the same mutex).
  std::vector<Message> spill_scratch_;
};

/// A bidirectional SplitSim channel: two rings plus configuration. The
/// rings live behind a pluggable Transport (sync/transport.hpp); the
/// default InProcTransport reproduces the historical both-on-the-heap
/// layout exactly.
class Channel {
 public:
  explicit Channel(std::string name, ChannelConfig cfg = {});

  ChannelEnd& end_a() { return end_a_; }
  ChannelEnd& end_b() { return end_b_; }

  const ChannelConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

  /// Swap the data path. Must happen before any traffic (protocol state in
  /// the ends is not migrated); the orchestration layer swaps transports
  /// between instantiation and run. A transport that forces blocking pins
  /// the mode to kBlocking — later set_mode calls keep it there.
  void set_transport(std::unique_ptr<Transport> t);
  Transport& transport() { return *transport_; }

  void set_mode(ChannelMode m) {
    mode_ = transport_->forces_blocking() ? ChannelMode::kBlocking : m;
  }
  ChannelMode mode() const { return mode_; }

  /// Abort flag checked by blocking sends (kBlocking mode): when it becomes
  /// true mid-wait, the send throws AbortedError instead of waiting forever
  /// for a consumer that may have died. The threaded runner points every
  /// channel at the run's abort flag for the duration of the run; nullptr
  /// (the default) restores unconditional blocking.
  void set_abort_flag(const std::atomic<bool>* abort) { abort_ = abort; }

  /// Back-compat shorthand: single-threaded == coscheduled spill mode.
  void set_single_threaded(bool st) {
    mode_ = st ? ChannelMode::kSpillSingleThread : ChannelMode::kBlocking;
  }
  bool single_threaded() const { return mode_ == ChannelMode::kSpillSingleThread; }

  /// Adaptive sync-interval override (orch/adaptive.hpp). 0 clears the
  /// override (back to the configured interval); any other value is clamped
  /// to [1, latency] — the legal range where SYNCs both make progress and
  /// never promise beyond the lookahead. Safe to call mid-run from another
  /// thread: SYNC placement only affects scheduling/horizons, never data
  /// timestamps (see ChannelEnd::send), so results and EventDigests are
  /// bit-identical whatever interval sequence a controller applies.
  void set_tuned_sync_interval(SimTime si) {
    if (si != 0) {
      if (si > cfg_.latency) si = cfg_.latency;
      if (si == 0) si = 1;  // latency 0 would clamp to 0: keep the override live
    }
    tuned_sync_interval_.store(si, std::memory_order_relaxed);
  }
  SimTime tuned_sync_interval() const {
    return tuned_sync_interval_.load(std::memory_order_relaxed);
  }

 private:
  friend class ChannelEnd;

  std::string name_;
  ChannelConfig cfg_;
  ChannelMode mode_ = ChannelMode::kBlocking;
  /// Live sync-interval override; 0 = none. Relaxed atomic: written by the
  /// adaptive controller, read by the owning components' send paths.
  std::atomic<SimTime> tuned_sync_interval_{0};
  const std::atomic<bool>* abort_ = nullptr;  ///< see set_abort_flag
  std::unique_ptr<Transport> transport_;      ///< owns the rings / data path
  std::deque<Message> a_spill_;
  std::deque<Message> b_spill_;
  // kSpillLocked state: one mutex per channel guards both spill queues; the
  // counts let producers/consumers skip the lock entirely while empty.
  std::mutex spill_mu_;
  std::atomic<std::size_t> a_spill_count_{0};
  std::atomic<std::size_t> b_spill_count_{0};
  ChannelEnd end_a_;
  ChannelEnd end_b_;

  /// Point both ends' ring/direct-send state at the current transport.
  void rewire();
};

inline SimTime ChannelEnd::effective_sync_interval() const {
  SimTime t = channel_->tuned_sync_interval_.load(std::memory_order_relaxed);
  return t != 0 ? t : config().effective_sync_interval();
}

template <typename F>
std::size_t ChannelEnd::drain_until(SimTime wire_limit, F&& on_data) {
  std::size_t delivered = 0;
  // Ring tier: strictly older than every spilled message. One acquire
  // (ready) establishes the batch; front_unsynchronized/pop then run on
  // consumer-owned state only. Returns true when a data message beyond the
  // limit stops the drain (everything behind it is even newer).
  auto drain_ring = [&]() -> bool {
    std::size_t n = rx_->ready();
    for (std::size_t i = 0; i < n; ++i) {
      const Message& m = rx_->front_unsynchronized();
      if (m.timestamp > last_recv_) last_recv_ = m.timestamp;
      if (m.is_sync() || m.is_fin()) {
        if (m.is_fin()) fin_received_ = true;
        rx_->pop();
        continue;
      }
      if (m.timestamp > wire_limit) return true;
      on_data(m);
      rx_->pop();
      ++delivered;
    }
    return false;
  };
  if (drain_ring()) return delivered;

  // ---- spill tier -------------------------------------------------------
  switch (channel_->mode_) {
    case ChannelMode::kBlocking:
      break;

    case ChannelMode::kSpillSingleThread: {
      std::size_t popped = 0;
      while (!rx_spill_->empty()) {
        const Message& front = rx_spill_->front();
        if (front.timestamp > last_recv_) last_recv_ = front.timestamp;
        if (front.is_sync() || front.is_fin()) {
          if (front.is_fin()) fin_received_ = true;
          rx_spill_->pop_front();
          ++popped;
          continue;
        }
        if (front.timestamp > wire_limit) break;
        // Copy out before dispatching so a handler that sends (and spills)
        // on this channel cannot touch the message mid-dispatch.
        Message m = front;
        rx_spill_->pop_front();
        ++popped;
        on_data(m);
        ++delivered;
      }
      if (popped != 0) rx_spill_count_->fetch_sub(popped, std::memory_order_relaxed);
      break;
    }

    case ChannelMode::kSpillLocked: {
      if (rx_spill_count_->load(std::memory_order_acquire) == 0) break;
      // That acquire synchronized with the producer's release: ring pushes
      // that preceded the spill are visible now even if the first ring pass
      // raced with them, and they predate everything spilled (the producer
      // only pushes the ring after observing an empty spill). Re-drain the
      // ring before touching the spill so FIFO order holds.
      if (drain_ring()) return delivered;
      spill_scratch_.clear();
      std::size_t popped = 0;
      {
        std::lock_guard<std::mutex> g(channel_->spill_mu_);
        while (!rx_spill_->empty()) {
          const Message& m = rx_spill_->front();
          if (m.timestamp > last_recv_) last_recv_ = m.timestamp;
          if (m.is_sync() || m.is_fin()) {
            if (m.is_fin()) fin_received_ = true;
          } else if (m.timestamp > wire_limit) {
            break;
          } else {
            spill_scratch_.push_back(m);
          }
          rx_spill_->pop_front();
          ++popped;
        }
      }
      // Only the delivered prefix was popped, so the producer's
      // ring-vs-spill FIFO invariant holds: the count stays nonzero while
      // older spilled messages remain.
      if (popped != 0) rx_spill_count_->fetch_sub(popped, std::memory_order_release);
      for (const Message& m : spill_scratch_) {
        on_data(m);
        ++delivered;
      }
      break;
    }
  }
  return delivered;
}

inline std::size_t ChannelEnd::discard_all() {
  return drain_until(kSimTimeMax, [](const Message&) {});
}

}  // namespace splitsim::sync
