// SplitSim channels: timestamped, latency-synchronized SPSC message links.
//
// Semantics (inherited from SimBricks):
//   * A message sent at sender simulation time `t` on a channel with latency
//     `L` is processed by the receiver at `t + L`.
//   * Senders emit messages with strictly increasing timestamps (enforced
//     here by bumping colliding timestamps by 1 ps) and send a SYNC message
//     at least every `sync_interval` of simulation time.
//   * A receiver may therefore safely advance its local clock to
//     `last_received_timestamp + L`: nothing can arrive earlier.
// This is conservative null-message synchronization with lookahead = link
// latency; parallel execution produces the same simulation results as
// sequential execution.
#pragma once

#include <atomic>
#include <cassert>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>

#include "sync/message.hpp"
#include "sync/spsc_ring.hpp"
#include "util/time.hpp"

namespace splitsim::sync {

struct ChannelConfig {
  /// Propagation latency; also the synchronization lookahead.
  SimTime latency = 500 * timeunit::ns;
  /// Max simulated-time gap between consecutive messages; 0 means "use the
  /// latency" (the largest value that still guarantees progress).
  SimTime sync_interval = 0;
  /// Ring capacity in 256-byte slots (power of two).
  std::size_t ring_capacity = 512;

  SimTime effective_sync_interval() const {
    SimTime si = sync_interval == 0 ? latency : sync_interval;
    return si < latency ? si : latency;
  }
};

class Channel;

/// One endpoint of a channel: produces into one ring, consumes the other.
/// Not thread-safe per endpoint — exactly one component owns each end.
class ChannelEnd {
 public:
  const ChannelConfig& config() const;
  const std::string& channel_name() const;
  Channel& channel() { return *channel_; }

  // ---- producer side -------------------------------------------------
  /// Send `msg` with timestamp >= max(msg.timestamp, last_sent + 1).
  /// Blocks (threaded mode) or grows the ring (single-threaded mode) when
  /// the ring is full. Returns cycles spent on backpressure.
  std::uint64_t send(Message msg);

  SimTime last_sent() const { return last_sent_; }

  /// True if a sync with timestamp `ts` would advance the peer's horizon.
  bool can_promise(SimTime ts) const { return !sent_anything_ || ts > last_sent_; }

  bool has_sent() const { return sent_anything_; }

  // ---- consumer side -------------------------------------------------
  /// Oldest pending *data* message, or nullptr. Pure sync messages are
  /// consumed internally (they only advance the horizon). The pointer stays
  /// valid until consume().
  const Message* peek();

  /// Discard the message returned by peek().
  void consume();

  /// Highest timestamp received so far (data or sync).
  SimTime last_recv() const { return last_recv_; }

  /// Peer promised to terminate: horizon is unbounded.
  bool fin_received() const { return fin_received_; }

  /// Time up to which (inclusive) the local simulator may safely advance.
  SimTime horizon() const {
    if (fin_received_) return kSimTimeMax;
    SimTime h = last_recv_ + config().latency;
    return h < last_recv_ ? kSimTimeMax : h;  // overflow guard
  }

 private:
  friend class Channel;
  ChannelEnd() = default;

  bool push_with_backpressure(const Message& msg, std::uint64_t& spin_cycles);

  Channel* channel_ = nullptr;
  MessageRing* tx_ = nullptr;
  MessageRing* rx_ = nullptr;
  std::deque<Message>* tx_spill_ = nullptr;  // single-threaded overflow
  SimTime last_sent_ = 0;
  SimTime last_recv_ = 0;
  bool fin_received_ = false;
  bool sent_anything_ = false;
  bool peeked_from_spill_ = false;
};

/// A bidirectional SplitSim channel: two rings plus configuration.
class Channel {
 public:
  explicit Channel(std::string name, ChannelConfig cfg = {});

  ChannelEnd& end_a() { return end_a_; }
  ChannelEnd& end_b() { return end_b_; }

  const ChannelConfig& config() const { return cfg_; }
  const std::string& name() const { return name_; }

  /// Single-threaded (coscheduled) mode: a full ring grows instead of
  /// blocking, since producer and consumer share one thread.
  void set_single_threaded(bool st) { single_threaded_ = st; }
  bool single_threaded() const { return single_threaded_; }

 private:
  friend class ChannelEnd;

  std::string name_;
  ChannelConfig cfg_;
  bool single_threaded_ = false;
  // a_to_b: produced by end_a, consumed by end_b (and vice versa).
  MessageRing a_to_b_;
  MessageRing b_to_a_;
  std::deque<Message> a_spill_;
  std::deque<Message> b_spill_;
  ChannelEnd end_a_;
  ChannelEnd end_b_;
};

}  // namespace splitsim::sync
