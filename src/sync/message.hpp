// Fixed-size message slots exchanged over SplitSim channels.
//
// SplitSim inherits the SimBricks transport model: component simulators
// exchange fixed-size, timestamped messages over shared-memory queues. A
// message is either a SYNC (pure synchronization, no payload) or a data
// message of a protocol-specific type (Ethernet frame, PCI transaction,
// memory packet, ...). Payloads are serialized into the slot, never passed
// by pointer, so the transport is process-portable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "util/padding.hpp"
#include "util/time.hpp"

namespace splitsim::sync {

/// Well-known message types. Protocol libraries define their own types
/// starting at kUserTypeBase.
enum class MsgType : std::uint16_t {
  kSync = 0,   ///< synchronization-only message
  kFin = 1,    ///< sender has terminated; horizon becomes unbounded
  kUser = 16,  ///< first protocol-specific type
};

inline constexpr std::uint16_t kUserTypeBase = static_cast<std::uint16_t>(MsgType::kUser);

/// One fixed-size channel slot. 256 bytes: 16-byte header + 240-byte payload.
struct Message {
  static constexpr std::size_t kPayloadCapacity = 240;

  SimTime timestamp = 0;        ///< sender's simulation time when sent
  std::uint16_t type = 0;       ///< MsgType or protocol-specific
  std::uint16_t subchannel = 0; ///< trunk demultiplexing id (0 = untagged)
  std::uint32_t size = 0;       ///< payload bytes in use

  alignas(8) unsigned char payload[kPayloadCapacity] = {};

  bool is_sync() const { return type == static_cast<std::uint16_t>(MsgType::kSync); }
  bool is_fin() const { return type == static_cast<std::uint16_t>(MsgType::kFin); }

  /// Serialize a trivially-copyable struct into the payload. Padding bytes
  /// inside T are zeroed so the serialized bytes are a pure function of the
  /// value — memcpy alone would copy whatever garbage the source object's
  /// padding holds, making payload-hashing (EventDigest) nondeterministic.
  template <typename T>
  void store(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>, "payload must be POD");
    static_assert(sizeof(T) <= kPayloadCapacity, "payload too large for slot");
    T tmp = value;
    clear_padding(&tmp);
    std::memcpy(payload, &tmp, sizeof(T));
    size = sizeof(T);
  }

  /// Deserialize the payload as a trivially-copyable struct.
  template <typename T>
  T as() const {
    static_assert(std::is_trivially_copyable_v<T>, "payload must be POD");
    static_assert(sizeof(T) <= kPayloadCapacity, "payload too large for slot");
    T value;
    std::memcpy(&value, payload, sizeof(T));
    return value;
  }
};

static_assert(sizeof(Message) == 256, "Message slots must stay 256 bytes");
static_assert(std::is_trivially_copyable_v<Message>);

}  // namespace splitsim::sync
