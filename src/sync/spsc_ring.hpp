// Lock-free single-producer single-consumer ring of Message slots.
//
// This is the shared-memory queue under every SplitSim channel. One producer
// thread (the sending component simulator) and one consumer thread (the
// receiving one); indices live on separate cache lines to avoid false
// sharing. Polling this ring is what the SplitSim profiler attributes as
// "cycles blocked on synchronization".
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>

#include "sync/message.hpp"

namespace splitsim::sync {

class MessageRing {
 public:
  /// `capacity` must be a power of two.
  explicit MessageRing(std::size_t capacity = 512)
      : capacity_(capacity), mask_(capacity - 1),
        slots_(std::make_unique<Message[]>(capacity)) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  MessageRing(const MessageRing&) = delete;
  MessageRing& operator=(const MessageRing&) = delete;

  /// Producer: enqueue a copy of `msg`. Returns false when full.
  bool try_push(const Message& msg) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= capacity_) return false;
    slots_[head & mask_] = msg;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: pointer to the oldest message, or nullptr when empty.
  /// The pointer stays valid until pop().
  const Message* front() const {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return nullptr;
    return &slots_[tail & mask_];
  }

  /// Consumer: discard the oldest message. Precondition: !empty.
  void pop() {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    tail_.store(tail + 1, std::memory_order_release);
  }

  /// Consumer: number of messages currently visible, with a single acquire.
  /// The batched channel drain uses this to pay one synchronizing load per
  /// batch instead of one per message (front() re-acquires every call).
  std::size_t ready() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_relaxed));
  }

  /// Consumer: the oldest message WITHOUT synchronizing against the
  /// producer. Only valid while a prior ready() in the same drain reports
  /// more messages than have been popped since.
  const Message& front_unsynchronized() const {
    return slots_[tail_.load(std::memory_order_relaxed) & mask_];
  }

  bool empty() const { return front() == nullptr; }
  std::size_t capacity() const { return capacity_; }

  /// Approximate occupancy (either end may race; fine for stats).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Message[]> slots_;

  alignas(64) std::atomic<std::uint64_t> head_{0};  // producer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // consumer-owned
};

}  // namespace splitsim::sync
