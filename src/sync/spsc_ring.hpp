// Lock-free single-producer single-consumer ring of Message slots.
//
// This is the shared-memory queue under every SplitSim channel. One producer
// thread (the sending component simulator) and one consumer thread (the
// receiving one); indices live on separate cache lines to avoid false
// sharing. Polling this ring is what the SplitSim profiler attributes as
// "cycles blocked on synchronization".
//
// The index block (RingState) and the slot array are plain address-free
// data, so the same ring works across OS processes when its storage lives
// in a mapped shm segment: MessageRing is a *view* over (state, slots) and
// only optionally owns them. std::atomic<uint64_t>/<uint32_t> are
// lock-free and address-free on every platform we target, which is the
// property that makes placing them in shared memory legal.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "sync/futex.hpp"
#include "sync/message.hpp"
#include "sync/wait.hpp"

namespace splitsim::sync {

/// Index block of one SPSC ring: trivially constructible-in-place POD so it
/// can live inside a shm segment shared by two processes. `park_seq` /
/// `park_waiters` implement cross-process producer parking: a producer that
/// finds the ring full futex-waits on park_seq; the consumer bumps and
/// wakes after popping, but only when a waiter advertised itself (so the
/// pop fast path pays one relaxed load).
struct RingState {
  alignas(64) std::atomic<std::uint64_t> head{0};  // producer-owned
  alignas(64) std::atomic<std::uint64_t> tail{0};  // consumer-owned
  alignas(64) std::atomic<std::uint32_t> park_seq{0};
  std::atomic<std::uint32_t> park_waiters{0};
};
static_assert(std::is_trivially_destructible_v<RingState>);

class MessageRing {
 public:
  /// Owning ring on the heap. `capacity` must be a power of two.
  explicit MessageRing(std::size_t capacity = 512)
      : capacity_(capacity), mask_(capacity - 1),
        owned_state_(std::make_unique<RingState>()),
        owned_slots_(std::make_unique<Message[]>(capacity)),
        st_(owned_state_.get()), slots_(owned_slots_.get()) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  /// View over external storage (a shm segment). The storage must be
  /// zero-initialized (or placement-new'd) RingState + `capacity` Message
  /// slots, and must outlive the view. `futex_park` enables cross-process
  /// producer parking on the state's park words.
  MessageRing(RingState* state, Message* slots, std::size_t capacity, bool futex_park)
      : capacity_(capacity), mask_(capacity - 1), st_(state), slots_(slots),
        futex_park_(futex_park) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  MessageRing(const MessageRing&) = delete;
  MessageRing& operator=(const MessageRing&) = delete;

  /// Producer: enqueue a copy of `msg`. Returns false when full.
  bool try_push(const Message& msg) {
    std::uint64_t head = st_->head.load(std::memory_order_relaxed);
    std::uint64_t tail = st_->tail.load(std::memory_order_acquire);
    if (head - tail >= capacity_) return false;
    slots_[head & mask_] = msg;
    st_->head.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Producer: one step of a full-ring wait. Heap rings use the caller's
  /// adaptive spin/yield/park policy; futex-parking rings advertise a
  /// waiter and sleep on the segment's park word until the consumer pops
  /// (bounded by a timeout so callers can re-check abort flags).
  void producer_wait_step(WaitState& ws) {
    if (!futex_park_) {
      ws.step();
      return;
    }
    std::uint32_t seq = st_->park_seq.load(std::memory_order_acquire);
    st_->park_waiters.store(1, std::memory_order_seq_cst);
    // Re-check after advertising: a pop between the full check and here
    // would otherwise be missed (the consumer only wakes when it sees the
    // waiter flag).
    std::uint64_t head = st_->head.load(std::memory_order_relaxed);
    std::uint64_t tail = st_->tail.load(std::memory_order_acquire);
    if (head - tail < capacity_) return;
    if (park_counter_ != nullptr) park_counter_->fetch_add(1, std::memory_order_relaxed);
    futex_wait(&st_->park_seq, seq, 2'000'000);  // 2ms: re-check abort often
  }

  /// Consumer: pointer to the oldest message, or nullptr when empty.
  /// The pointer stays valid until pop().
  const Message* front() const {
    std::uint64_t tail = st_->tail.load(std::memory_order_relaxed);
    std::uint64_t head = st_->head.load(std::memory_order_acquire);
    if (tail == head) return nullptr;
    return &slots_[tail & mask_];
  }

  /// Consumer: discard the oldest message. Precondition: !empty.
  void pop() {
    std::uint64_t tail = st_->tail.load(std::memory_order_relaxed);
    st_->tail.store(tail + 1, std::memory_order_release);
    if (futex_park_ && st_->park_waiters.load(std::memory_order_seq_cst) != 0) {
      st_->park_waiters.store(0, std::memory_order_relaxed);
      st_->park_seq.fetch_add(1, std::memory_order_release);
      if (wake_counter_ != nullptr) wake_counter_->fetch_add(1, std::memory_order_relaxed);
      futex_wake_all(&st_->park_seq);
    }
  }

  /// Consumer: number of messages currently visible, with a single acquire.
  /// The batched channel drain uses this to pay one synchronizing load per
  /// batch instead of one per message (front() re-acquires every call).
  std::size_t ready() const {
    return static_cast<std::size_t>(st_->head.load(std::memory_order_acquire) -
                                    st_->tail.load(std::memory_order_relaxed));
  }

  /// Consumer: the oldest message WITHOUT synchronizing against the
  /// producer. Only valid while a prior ready() in the same drain reports
  /// more messages than have been popped since.
  const Message& front_unsynchronized() const {
    return slots_[st_->tail.load(std::memory_order_relaxed) & mask_];
  }

  bool empty() const { return front() == nullptr; }
  std::size_t capacity() const { return capacity_; }

  /// Attach park/wake counters (bumped only on the futex slow paths, so the
  /// ring fast path is untouched). Used by shm transports for obs.
  void set_park_counters(std::atomic<std::uint64_t>* parks,
                         std::atomic<std::uint64_t>* wakes) {
    park_counter_ = parks;
    wake_counter_ = wakes;
  }

  /// Approximate occupancy (either end may race; fine for stats).
  std::size_t size() const {
    return static_cast<std::size_t>(st_->head.load(std::memory_order_acquire) -
                                    st_->tail.load(std::memory_order_acquire));
  }

  /// Total bytes a shm segment must reserve for one ring's storage
  /// (RingState + slots), each 64-byte aligned.
  static std::size_t storage_bytes(std::size_t capacity) {
    return sizeof(RingState) + capacity * sizeof(Message);
  }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<RingState> owned_state_;
  std::unique_ptr<Message[]> owned_slots_;
  RingState* st_;
  Message* slots_;
  const bool futex_park_ = false;
  std::atomic<std::uint64_t>* park_counter_ = nullptr;
  std::atomic<std::uint64_t>* wake_counter_ = nullptr;
};

}  // namespace splitsim::sync
