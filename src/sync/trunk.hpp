// Trunk adapter (paper §3.2.1, "Trunk adapter").
//
// A non-trivial partition usually cuts multiple links between the same pair
// of processes. Running one synchronized channel per cut link multiplies the
// synchronization overhead; a trunk instead multiplexes many logical
// sub-channels over ONE synchronized SplitSim channel. Messages are tagged
// with a sub-channel id and demultiplexed at the receiver.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sync/adapter.hpp"

namespace splitsim::sync {

class TrunkAdapter;

/// Lightweight handle for one logical sub-channel of a trunk.
class TrunkSubPort {
 public:
  TrunkSubPort() = default;
  TrunkSubPort(TrunkAdapter* trunk, std::uint16_t id) : trunk_(trunk), id_(id) {}

  template <typename T>
  void send(std::uint16_t type, const T& payload, SimTime now);
  void send(std::uint16_t type, SimTime now);

  std::uint16_t id() const { return id_; }
  bool valid() const { return trunk_ != nullptr; }

 private:
  TrunkAdapter* trunk_ = nullptr;
  std::uint16_t id_ = 0;
};

class TrunkAdapter : public Adapter {
 public:
  using Adapter::Adapter;

  /// Register a sub-channel and its receive handler; returns a send handle.
  /// Sub-channel ids must be unique per trunk and agreed upon by both ends
  /// (the orchestrator assigns them deterministically).
  TrunkSubPort subport(std::uint16_t id, Handler handler);

  std::size_t subport_count() const { return sub_handlers_.size(); }

  /// Registered sub-channel ids, sorted ascending. The cross-process
  /// handshake folds these into a channel-map hash so two processes that
  /// disagree about a trunk's sub-channel layout fail loudly at connect
  /// time instead of misrouting messages.
  std::vector<std::uint16_t> subport_ids() const {
    std::vector<std::uint16_t> ids;
    ids.reserve(sub_handlers_.size());
    for (const auto& [id, h] : sub_handlers_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

 protected:
  void dispatch(const Message& m, SimTime rx_time) override;

 private:
  std::unordered_map<std::uint16_t, Handler> sub_handlers_;
};

template <typename T>
void TrunkSubPort::send(std::uint16_t type, const T& payload, SimTime now) {
  trunk_->send(type, payload, now, id_);
}

inline void TrunkSubPort::send(std::uint16_t type, SimTime now) {
  trunk_->send(type, now, id_);
}

}  // namespace splitsim::sync
