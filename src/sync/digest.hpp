// Determinism digests (the mechanical check behind the paper's central
// correctness claim: conservative lookahead synchronization makes parallel
// execution produce bit-identical results to sequential execution).
//
// Every adapter folds each *data* message it delivers — timestamp, channel,
// message type, sub-channel, payload bytes — into an order-insensitive
// digest. Because the fold is commutative (xor + sum of per-event hashes),
// the digest is independent of the wall-clock interleaving of components and
// depends only on the simulated event streams. Two runs of the same
// simulation under different run modes (coscheduled, threaded, pooled) must
// therefore produce identical digests; any scheduler bug that reorders,
// drops, duplicates, or retimes a message changes the digest.
//
// SYNC/null/FIN messages are deliberately excluded: their emission pattern
// is wall-clock dependent (a blocked component sends null messages), but
// they only carry horizon promises and never alter simulated behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sync/message.hpp"

namespace splitsim::sync {

/// FNV-1a over a byte range, seedable for chaining.
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t seed = 1469598103934665603ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv1a(const std::string& s) { return fnv1a(s.data(), s.size()); }

/// Hash of one delivered data message on a named channel.
inline std::uint64_t hash_event(std::uint64_t channel_hash, const Message& m) {
  struct Header {
    std::uint64_t channel;
    SimTime timestamp;
    std::uint16_t type;
    std::uint16_t subchannel;
    std::uint32_t size;
  } hdr{channel_hash, m.timestamp, m.type, m.subchannel, m.size};
  std::uint64_t h = fnv1a(&hdr, sizeof(hdr));
  return fnv1a(m.payload, m.size, h);
}

/// Order-insensitive fold of event hashes. Commutative and associative:
/// per-adapter digests merge into per-component digests, which merge into
/// one run digest, regardless of execution order.
struct EventDigest {
  std::uint64_t fold_xor = 0;
  std::uint64_t fold_sum = 0;
  std::uint64_t count = 0;

  void add(std::uint64_t event_hash) {
    fold_xor ^= event_hash;
    // Weyl-style multiply before summing so that xor and sum fail
    // independently (two swapped pairs that cancel in xor do not in sum).
    fold_sum += event_hash * 0x9E3779B97F4A7C15ull + 1;
    ++count;
  }

  void merge(const EventDigest& o) {
    fold_xor ^= o.fold_xor;
    fold_sum += o.fold_sum;
    count += o.count;
  }

  /// Single 64-bit summary value (for logs and quick comparison).
  std::uint64_t value() const {
    std::uint64_t h = fnv1a(&fold_xor, sizeof(fold_xor));
    h = fnv1a(&fold_sum, sizeof(fold_sum), h);
    return fnv1a(&count, sizeof(count), h);
  }

  friend bool operator==(const EventDigest& a, const EventDigest& b) {
    return a.fold_xor == b.fold_xor && a.fold_sum == b.fold_sum && a.count == b.count;
  }
  friend bool operator!=(const EventDigest& a, const EventDigest& b) { return !(a == b); }
};

}  // namespace splitsim::sync
