#include "sync/socket.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sync/digest.hpp"
#include "sync/wait.hpp"
#include "util/cycles.hpp"

namespace splitsim::sync {

namespace {

constexpr std::uint64_t kTrunkMagic = 0x53706C54726B3031ull;  // "SplTrk01"
constexpr std::uint32_t kTrunkVersion = 1;

struct SocketHello {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t slot_bytes;
  std::uint64_t channel_hash;
  std::uint64_t map_hash;
  std::uint64_t latency;
  std::uint32_t staging_capacity;
  std::uint32_t pad;
  /// Sender's rdcycles() when it built this hello: the clock-calibration
  /// exchange. Receivers store (local rdcycles at receipt - hello_tsc) as
  /// WireCounters::clock_skew_cycles — on one machine that is handshake
  /// latency; across machines, the TSC offset a merge must subtract. 0 from
  /// an old peer is treated as "no calibration" (field was reserved).
  std::uint64_t hello_tsc;
  std::uint64_t reserved;
};
static_assert(sizeof(SocketHello) == 64, "hello layout is part of the wire format");

struct FrameHeader {
  SimTime timestamp;
  std::uint16_t type;
  std::uint16_t subchannel;
  std::uint32_t size;
};
static_assert(sizeof(FrameHeader) == 16, "frame header layout is part of the wire format");

[[noreturn]] void fail(const std::string& channel, const std::string& what) {
  throw TransportError(channel, "socket transport on channel '" + channel + "': " + what);
}

/// Blocking full write with SIGPIPE suppressed. Returns false on error.
bool write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Full read. Returns 1 on success, 0 on clean EOF at a frame boundary
/// (nothing read yet), -1 on error or truncated frame.
int read_all(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

/// read_all with a poll()-based deadline (handshake only; data pumps block
/// indefinitely and are unblocked by shutdown()).
int read_all_deadline(int fd, void* buf, std::size_t n, std::uint64_t timeout_ms) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (got < n) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
    if (left <= 0) return -2;
    struct pollfd pfd{fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (pr == 0) return -2;
    ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) return 0;
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

int tcp_listen_loopback(std::uint16_t& port_out) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("", "socket(): " + std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 4) != 0) {
    int e = errno;
    ::close(fd);
    fail("", "bind/listen: " + std::string(std::strerror(e)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    int e = errno;
    ::close(fd);
    fail("", "getsockname: " + std::string(std::strerror(e)));
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

int tcp_accept(int listen_fd, std::uint64_t timeout_ms, const std::string& channel) {
  struct pollfd pfd{listen_fd, POLLIN, 0};
  int pr = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (pr <= 0) fail(channel, "accept timed out (is the peer process running?)");
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) fail(channel, "accept: " + std::string(std::strerror(errno)));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int tcp_connect(const std::string& host, std::uint16_t port, std::uint64_t timeout_ms,
                const std::string& channel) {
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    fail(channel, "bad peer address '" + host + "'");
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) fail(channel, "socket(): " + std::string(std::strerror(errno)));
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      fail(channel, "connect to " + host + ":" + std::to_string(port) +
                        " timed out (is the peer process running?)");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

SocketTransport::SocketTransport(SocketChannelParams params) : params_(std::move(params)) {
  // Staging rings exist for both sides unconditionally: the obs reporter
  // polls rx depth on both ends of every channel, remote or not.
  staging_[0] = std::make_unique<MessageRing>(params_.ring_capacity);
  staging_[1] = std::make_unique<MessageRing>(params_.ring_capacity);
  // Bytes on the wire per message: u32 length prefix + frame header + payload.
  wire_.frame_overhead = 4 + static_cast<std::uint32_t>(sizeof(FrameHeader));
}

SocketTransport::~SocketTransport() { stop(); }

MessageRing* SocketTransport::rx_ring(int side) {
  return staging_[side == 0 ? 0 : 1].get();
}

void SocketTransport::send_direct(int side, const Message& msg) {
  const int fd = params_.fd[side];
  unsigned char frame[4 + sizeof(FrameHeader) + Message::kPayloadCapacity];
  const std::uint32_t body = static_cast<std::uint32_t>(sizeof(FrameHeader)) + msg.size;
  FrameHeader hdr{msg.timestamp, msg.type, msg.subchannel, msg.size};
  std::memcpy(frame, &body, 4);
  std::memcpy(frame + 4, &hdr, sizeof(hdr));
  std::memcpy(frame + 4 + sizeof(hdr), msg.payload, msg.size);
  if (!write_all(fd, frame, 4 + sizeof(hdr) + msg.size)) {
    record_failure(side, "peer connection broke mid-send on channel '" +
                             params_.channel_name + "': " + std::strerror(errno));
    throw TransportError(params_.channel_name,
                         "send on channel '" + params_.channel_name +
                             "' failed: peer connection broke (" + std::strerror(errno) + ")");
  }
}

void SocketTransport::start() {
  if (started_) return;
  started_ = true;
  const std::string& chan = params_.channel_name;
  SocketHello mine{};
  mine.magic = kTrunkMagic;
  mine.version = kTrunkVersion;
  mine.slot_bytes = static_cast<std::uint32_t>(sizeof(Message));
  mine.channel_hash = fnv1a(chan);
  mine.map_hash = params_.map_hash;
  mine.latency = params_.latency;
  mine.staging_capacity = static_cast<std::uint32_t>(params_.ring_capacity);
  mine.hello_tsc = rdcycles();

  // Write every local hello before reading any: when both sides live in
  // this process (single-process transport swap) the hellos cross over one
  // connected pair, and read-before-write would deadlock.
  for (int side = 0; side < 2; ++side) {
    if (params_.fd[side] < 0) continue;
    if (!write_all(params_.fd[side], &mine, sizeof(mine))) {
      fail(chan, "handshake write failed: " + std::string(std::strerror(errno)));
    }
  }
  for (int side = 0; side < 2; ++side) {
    if (params_.fd[side] < 0) continue;
    SocketHello theirs{};
    int r = read_all_deadline(params_.fd[side], &theirs, sizeof(theirs),
                              params_.handshake_timeout_ms);
    if (r == -2) fail(chan, "handshake timed out (is the peer process running?)");
    if (r != 1) fail(chan, "peer closed during handshake");
    if (theirs.magic != kTrunkMagic) fail(chan, "bad magic (peer is not a SplitSim trunk)");
    if (theirs.version != kTrunkVersion) {
      fail(chan, "version mismatch: peer speaks v" + std::to_string(theirs.version) +
                     ", we speak v" + std::to_string(kTrunkVersion));
    }
    if (theirs.slot_bytes != sizeof(Message)) {
      fail(chan, "wire-format mismatch: peer slot size " +
                     std::to_string(theirs.slot_bytes) + " != ours " +
                     std::to_string(sizeof(Message)));
    }
    if (theirs.channel_hash != fnv1a(chan)) {
      fail(chan, "channel identity mismatch: peer connected a different channel here");
    }
    if (theirs.map_hash != params_.map_hash) {
      fail(chan, "channel-map mismatch: peer trunk carries a different subchannel map");
    }
    if (theirs.latency != params_.latency) {
      fail(chan, "latency mismatch: peer " + std::to_string(theirs.latency) + " != ours " +
                     std::to_string(params_.latency));
    }
    if (theirs.hello_tsc != 0) {
      wire_.clock_skew_cycles.store(
          static_cast<std::int64_t>(rdcycles() - theirs.hello_tsc),
          std::memory_order_relaxed);
    }
  }
  for (int side = 0; side < 2; ++side) {
    if (params_.fd[side] < 0) continue;
    pump_[side] = std::thread([this, side] { pump(side); });
  }
}

void SocketTransport::pump(int side) {
  const int fd = params_.fd[side];
  MessageRing* ring = staging_[side].get();
  for (;;) {
    std::uint32_t body = 0;
    int r = read_all(fd, &body, sizeof(body));
    if (r == 0) {
      // Clean EOF at a frame boundary: normal iff the peer's FIN already
      // passed through this pump.
      if (!fin_pumped_[side].load(std::memory_order_relaxed)) {
        record_failure(side, "peer process feeding channel '" + params_.channel_name +
                                 "' closed the connection before FIN");
      }
      return;
    }
    if (r < 0) {
      if (!stop_.load(std::memory_order_relaxed) &&
          !fin_pumped_[side].load(std::memory_order_relaxed)) {
        record_failure(side, "read error on channel '" + params_.channel_name +
                                 "': " + std::strerror(errno));
      }
      return;
    }
    if (body < sizeof(FrameHeader) || body > sizeof(FrameHeader) + Message::kPayloadCapacity) {
      record_failure(side, "garbage frame length " + std::to_string(body) + " on channel '" +
                               params_.channel_name + "'");
      return;
    }
    unsigned char buf[sizeof(FrameHeader) + Message::kPayloadCapacity];
    if (read_all(fd, buf, body) != 1) {
      record_failure(side, "truncated frame on channel '" + params_.channel_name + "'");
      return;
    }
    FrameHeader hdr;
    std::memcpy(&hdr, buf, sizeof(hdr));
    if (hdr.size != body - sizeof(FrameHeader)) {
      record_failure(side, "inconsistent frame on channel '" + params_.channel_name + "'");
      return;
    }
    Message msg;  // payload tail stays zeroed — digests hash payload[0..size)
    msg.timestamp = hdr.timestamp;
    msg.type = hdr.type;
    msg.subchannel = hdr.subchannel;
    msg.size = hdr.size;
    std::memcpy(msg.payload, buf + sizeof(hdr), hdr.size);
    if (msg.is_fin()) fin_pumped_[side].store(true, std::memory_order_relaxed);
    WaitState wait;
    while (!ring->try_push(msg)) {
      if (stop_.load(std::memory_order_relaxed)) return;
      wait.step();
    }
  }
}

void SocketTransport::record_failure(int side, const std::string& what) {
  std::lock_guard<std::mutex> g(failure_mu_);
  if (failure_[side].empty()) failure_[side] = what;
}

std::string SocketTransport::peer_failure(int side, bool /*fin_seen*/) {
  std::lock_guard<std::mutex> g(failure_mu_);
  return failure_[side];
}

void SocketTransport::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_relaxed);
  for (int side = 0; side < 2; ++side) {
    if (params_.fd[side] >= 0) ::shutdown(params_.fd[side], SHUT_RDWR);
  }
  for (int side = 0; side < 2; ++side) {
    if (pump_[side].joinable()) pump_[side].join();
  }
  for (int side = 0; side < 2; ++side) {
    if (params_.fd[side] >= 0) {
      ::close(params_.fd[side]);
      params_.fd[side] = -1;
    }
  }
}

}  // namespace splitsim::sync
