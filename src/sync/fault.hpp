// Deterministic channel-level fault injection.
//
// Robustness claims need machinery to prove them: a runtime that promises
// "every failure surfaces as an attributed error" must be exercisable with
// injected faults in CI, forever. This header provides the channel half —
// per-adapter drop / duplicate / delay of *data* messages on the send side.
// SYNC/FIN messages are never faulted: they carry only horizon promises, and
// corrupting them would wedge the synchronization protocol rather than test
// the model (the hang watchdog covers that class separately).
//
// Determinism: each injector owns an Rng seeded from the experiment's fault
// seed plus the channel/component identity, and draws a fixed number of
// variates per data message in send order. Send order per adapter is a pure
// function of the simulation (not of thread interleaving), so a faulted run
// replays bit-identically across run modes and repetitions — the same
// EventDigest machinery that checks clean runs checks faulted ones.
//
// Protocol safety: all three faults preserve the channel invariants. A drop
// leaves the timestamp state untouched (syncs still advance the peer's
// horizon). A delay only moves a wire timestamp forward, and the promise
// discipline (nulls only ever promise beyond last_sent) still holds. A
// duplicate goes through the normal send path and picks up the strict
// +1 ps monotonicity bump.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace splitsim::sync {

/// Per-channel fault configuration. Probabilities are evaluated per data
/// message; at most one fault applies per message (drop wins over duplicate
/// wins over delay).
struct ChannelFaultConfig {
  double drop_prob = 0.0;  ///< message silently vanishes
  double dup_prob = 0.0;   ///< message delivered twice (copy bumped +1 ps)
  double delay_prob = 0.0; ///< message's wire timestamp shifted by `delay`
  SimTime delay = 0;       ///< extra latency for delayed messages

  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || (delay_prob > 0.0 && delay > 0);
  }
};

/// What to do with one outgoing data message.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  SimTime delay = 0;
};

struct FaultCounters {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;

  std::uint64_t total() const { return dropped + duplicated + delayed; }
};

/// One adapter's deterministic fault stream. Not thread-safe; owned and
/// driven by the adapter's component like every other adapter state.
class ChannelFaultInjector {
 public:
  ChannelFaultInjector(const ChannelFaultConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(seed) {}

  /// Decide the fate of the next outgoing data message. Always consumes the
  /// same number of Rng variates regardless of configuration so decision
  /// streams stay aligned when probabilities change.
  FaultDecision decide();

  const FaultCounters& counters() const { return counters_; }

 private:
  ChannelFaultConfig cfg_;
  Rng rng_;
  FaultCounters counters_;
};

}  // namespace splitsim::sync
