#include "sync/channel.hpp"

#include "sync/digest.hpp"
#include "sync/wait.hpp"
#include "util/cycles.hpp"

namespace splitsim::sync {

Channel::Channel(std::string name, ChannelConfig cfg)
    : name_(std::move(name)), cfg_(cfg),
      transport_(std::make_unique<InProcTransport>(cfg.ring_capacity)) {
  end_a_.channel_ = this;
  end_a_.tx_spill_ = &a_spill_;
  end_a_.rx_spill_ = &b_spill_;
  end_a_.tx_spill_count_ = &a_spill_count_;
  end_a_.rx_spill_count_ = &b_spill_count_;
  end_b_.channel_ = this;
  end_b_.tx_spill_ = &b_spill_;
  end_b_.rx_spill_ = &a_spill_;
  end_b_.tx_spill_count_ = &b_spill_count_;
  end_b_.rx_spill_count_ = &a_spill_count_;
  rewire();
}

void Channel::rewire() {
  end_a_.tx_ = transport_->tx_ring(0);
  end_a_.rx_ = transport_->rx_ring(0);
  end_b_.tx_ = transport_->tx_ring(1);
  end_b_.rx_ = transport_->rx_ring(1);
  end_a_.transport_ = transport_.get();
  end_b_.transport_ = transport_.get();
  end_a_.side_ = 0;
  end_b_.side_ = 1;
  end_a_.direct_send_ = transport_->sends_direct(0);
  end_b_.direct_send_ = transport_->sends_direct(1);
  end_a_.wire_ = transport_->wire_counters();
  end_b_.wire_ = transport_->wire_counters();
  if (transport_->forces_blocking()) mode_ = ChannelMode::kBlocking;
}

void Channel::set_transport(std::unique_ptr<Transport> t) {
  assert(t != nullptr);
  transport_ = std::move(t);
  rewire();
}

const ChannelConfig& ChannelEnd::config() const { return channel_->cfg_; }
const std::string& ChannelEnd::channel_name() const { return channel_->name_; }

bool ChannelEnd::push_with_backpressure(const Message& msg, std::uint64_t& spin_cycles) {
  switch (channel_->mode_) {
    case ChannelMode::kSpillSingleThread:
      // Producer and consumer share a thread: blocking would deadlock, so we
      // overflow into an unbounded spill queue. Ordering: once spilling, keep
      // spilling until the consumer (same thread) has drained the spill.
      if (!tx_spill_->empty() || !tx_->try_push(msg)) {
        tx_spill_->push_back(msg);
        // Count maintained even without the lock protocol so the obs
        // reporter can read spill depth without touching the deque.
        tx_spill_count_->fetch_add(1, std::memory_order_relaxed);
        tx_stalls_.fetch_add(1, std::memory_order_relaxed);
      }
      return true;

    case ChannelMode::kSpillLocked: {
      // Pooled runs: never block a worker on ring space. FIFO is preserved
      // by the invariant that every ring message is older than every spill
      // message: we only push to the ring after observing an empty spill
      // (acquire on the count pairs with the consumer's release decrement,
      // so all older spilled messages were already consumed).
      if (tx_spill_count_->load(std::memory_order_acquire) == 0 && tx_->try_push(msg)) {
        return true;
      }
      {
        std::lock_guard<std::mutex> g(channel_->spill_mu_);
        tx_spill_->push_back(msg);
      }
      tx_spill_count_->fetch_add(1, std::memory_order_release);
      tx_stalls_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }

    case ChannelMode::kBlocking:
      break;
  }
  if (direct_send_) {
    // Socket-style transport: the frame write itself blocks on the kernel
    // buffer, so that *is* the backpressure. Throws TransportError when the
    // peer is gone; the runner attributes it as a transport failure.
    transport_->send_direct(side_, msg);
    return true;
  }
  if (tx_->try_push(msg)) return true;
  tx_stalls_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t start = rdcycles();
  WaitState wait;
  while (!tx_->try_push(msg)) {
    // If the run is aborting, the consumer may already be gone — waiting for
    // ring space would hang this thread forever.
    if (channel_->abort_ != nullptr && channel_->abort_->load(std::memory_order_relaxed)) {
      throw AbortedError(channel_->name_);
    }
    // Heap rings: adaptive spin/yield/park. Shm rings: futex-park on the
    // segment so a cross-process producer sleeps until the consumer pops.
    tx_->producer_wait_step(wait);
  }
  spin_cycles += rdcycles() - start;
  return true;
}

std::uint64_t ChannelEnd::send(Message msg) {
  // Data messages carry strictly increasing timestamps: that is what makes
  // the receive horizon (last_recv + latency) safe to advance to
  // *inclusively*. The 1 ps bump for same-time data is far below any
  // modeled latency. SYNC/FIN only move the horizon, so they may *tie*
  // with the current wire timestamp instead of bumping past it: a bumped
  // sync would fold the wall-clock-dependent placement of null messages
  // into last_sent_ and from there into later data timestamps, breaking
  // cross-mode determinism. With the tie rule, data bumps depend only on
  // earlier data, which is identical in every run mode.
  if (msg.is_sync() || msg.is_fin()) {
    if (sent_anything_ && msg.timestamp < last_sent_) msg.timestamp = last_sent_;
  } else {
    if (sent_data_ && msg.timestamp <= last_data_sent_) {
      msg.timestamp = last_data_sent_ + 1;
    }
    // Promise discipline (nulls are emitted only while every pending local
    // action lies strictly beyond the promise) keeps data ahead of the
    // wire timestamp; the receiver's inclusive horizon depends on it.
    assert(!sent_anything_ || msg.timestamp > last_sent_);
    last_data_sent_ = msg.timestamp;
    sent_data_ = true;
    if (ckpt_window_enabled_) {
      ckpt_window_.push_back({msg.timestamp, hash_event(ckpt_channel_hash_, msg)});
    }
  }
  if (msg.timestamp > last_sent_) last_sent_ = msg.timestamp;
  sent_anything_ = true;
  std::uint64_t spin = 0;
  push_with_backpressure(msg, spin);
  if (wire_ != nullptr) {
    // Cross-process transport: account the frame we just put on the wire
    // (relaxed bumps on a cached pointer — inproc channels never pay this).
    wire_->tx_frames.fetch_add(1, std::memory_order_relaxed);
    wire_->tx_bytes.fetch_add(wire_->fixed_frame_bytes != 0
                                  ? wire_->fixed_frame_bytes
                                  : wire_->frame_overhead + msg.size,
                              std::memory_order_relaxed);
    if (msg.is_sync()) {
      wire_->tx_syncs.fetch_add(1, std::memory_order_relaxed);
    } else if (!msg.is_fin()) {
      wire_->tx_datas.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return spin;
}

void ChannelEnd::enable_ckpt_window() {
  ckpt_window_enabled_ = true;
  ckpt_channel_hash_ = fnv1a(channel_->name_);
}

ChannelEnd::InflightSummary ChannelEnd::inflight_at(SimTime boundary) {
  // Entries at or before the boundary are already delivered (they are in
  // the peer's digest); boundaries are queried in non-decreasing order, so
  // they can go for good. What remains is timestamp-sorted (data-send
  // monotonicity), so the in-flight range is a prefix.
  while (!ckpt_window_.empty() && ckpt_window_.front().ts <= boundary) {
    ckpt_window_.pop_front();
  }
  InflightSummary s;
  const SimTime limit = boundary + config().latency;
  for (const CkptSend& e : ckpt_window_) {
    if (e.ts > limit) break;
    s.fold ^= e.hash;
    ++s.count;
  }
  return s;
}

const Message* ChannelEnd::spill_front(bool& from_spill) {
  switch (channel_->mode_) {
    case ChannelMode::kSpillSingleThread:
      if (!rx_spill_->empty()) {
        from_spill = true;
        return &rx_spill_->front();
      }
      return nullptr;
    case ChannelMode::kSpillLocked: {
      if (rx_spill_count_->load(std::memory_order_acquire) == 0) return nullptr;
      std::lock_guard<std::mutex> g(channel_->spill_mu_);
      if (rx_spill_->empty()) return nullptr;
      from_spill = true;
      // Safe to use after unlocking: deque references are stable under
      // push_back, and only this consumer ever pops.
      return &rx_spill_->front();
    }
    case ChannelMode::kBlocking:
      return nullptr;
  }
  return nullptr;
}

void ChannelEnd::spill_pop() {
  if (channel_->mode_ == ChannelMode::kSpillLocked) {
    {
      std::lock_guard<std::mutex> g(channel_->spill_mu_);
      rx_spill_->pop_front();
    }
    rx_spill_count_->fetch_sub(1, std::memory_order_release);
  } else {
    rx_spill_->pop_front();
    rx_spill_count_->fetch_sub(1, std::memory_order_relaxed);
  }
}

const Message* ChannelEnd::peek() {
  for (;;) {
    const Message* m = rx_->front();
    bool from_spill = false;
    if (m == nullptr) {
      m = spill_front(from_spill);
      if (from_spill) {
        // The spill-count acquire synchronized with the producer's release,
        // so ring pushes that preceded the spill are visible now even if the
        // front() above raced with them. Any ring message predates every
        // spilled one (the producer only pushes the ring after observing an
        // empty spill), so the ring must win to preserve FIFO.
        const Message* r = rx_->front();
        if (r != nullptr) {
          m = r;
          from_spill = false;
        }
      }
    }
    if (m == nullptr) return nullptr;
    if (m->timestamp > last_recv_) last_recv_ = m->timestamp;
    if (m->is_sync() || m->is_fin()) {
      if (m->is_fin()) fin_received_ = true;
      if (from_spill) {
        spill_pop();
      } else {
        rx_->pop();
      }
      continue;  // syncs only move the horizon
    }
    peeked_from_spill_ = from_spill;
    return m;
  }
}

void ChannelEnd::consume() {
  if (peeked_from_spill_) {
    spill_pop();
    peeked_from_spill_ = false;
  } else {
    rx_->pop();
  }
}

}  // namespace splitsim::sync
