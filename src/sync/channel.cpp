#include "sync/channel.hpp"

#include <thread>

#include "util/cycles.hpp"

namespace splitsim::sync {

Channel::Channel(std::string name, ChannelConfig cfg)
    : name_(std::move(name)), cfg_(cfg), a_to_b_(cfg.ring_capacity), b_to_a_(cfg.ring_capacity) {
  end_a_.channel_ = this;
  end_a_.tx_ = &a_to_b_;
  end_a_.rx_ = &b_to_a_;
  end_a_.tx_spill_ = &a_spill_;
  end_b_.channel_ = this;
  end_b_.tx_ = &b_to_a_;
  end_b_.rx_ = &a_to_b_;
  end_b_.tx_spill_ = &b_spill_;
}

const ChannelConfig& ChannelEnd::config() const { return channel_->cfg_; }
const std::string& ChannelEnd::channel_name() const { return channel_->name_; }

bool ChannelEnd::push_with_backpressure(const Message& msg, std::uint64_t& spin_cycles) {
  if (channel_->single_threaded_) {
    // Producer and consumer share a thread: blocking would deadlock, so we
    // overflow into an unbounded spill queue. Ordering: once spilling, keep
    // spilling until the consumer (same thread) has drained the spill.
    if (!tx_spill_->empty() || !tx_->try_push(msg)) {
      tx_spill_->push_back(msg);
    }
    return true;
  }
  if (tx_->try_push(msg)) return true;
  std::uint64_t start = rdcycles();
  int spins = 0;
  while (!tx_->try_push(msg)) {
    cpu_relax();
    if (++spins >= 128) {
      spins = 0;
      std::this_thread::yield();
    }
  }
  spin_cycles += rdcycles() - start;
  return true;
}

std::uint64_t ChannelEnd::send(Message msg) {
  // Enforce strictly increasing timestamps: this is what makes the receive
  // horizon (last_recv + latency) safe to advance to *inclusively*. The
  // 1 ps bump for same-time messages is far below any modeled latency.
  if (sent_anything_ && msg.timestamp <= last_sent_) {
    msg.timestamp = last_sent_ + 1;
  }
  last_sent_ = msg.timestamp;
  sent_anything_ = true;
  std::uint64_t spin = 0;
  push_with_backpressure(msg, spin);
  return spin;
}

const Message* ChannelEnd::peek() {
  for (;;) {
    const Message* m = rx_->front();
    bool from_spill = false;
    if (m == nullptr && channel_->single_threaded_) {
      // Ring drained; check the peer's spill queue (same thread, safe).
      std::deque<Message>* peer_spill =
          (this == &channel_->end_a_) ? &channel_->b_spill_ : &channel_->a_spill_;
      if (!peer_spill->empty()) {
        m = &peer_spill->front();
        from_spill = true;
      }
    }
    if (m == nullptr) return nullptr;
    if (m->timestamp > last_recv_) last_recv_ = m->timestamp;
    if (m->is_sync() || m->is_fin()) {
      if (m->is_fin()) fin_received_ = true;
      if (from_spill) {
        std::deque<Message>* peer_spill =
            (this == &channel_->end_a_) ? &channel_->b_spill_ : &channel_->a_spill_;
        peer_spill->pop_front();
      } else {
        rx_->pop();
      }
      continue;  // syncs only move the horizon
    }
    peeked_from_spill_ = from_spill;
    return m;
  }
}

void ChannelEnd::consume() {
  if (peeked_from_spill_) {
    std::deque<Message>* peer_spill =
        (this == &channel_->end_a_) ? &channel_->b_spill_ : &channel_->a_spill_;
    peer_spill->pop_front();
    peeked_from_spill_ = false;
  } else {
    rx_->pop();
  }
}

}  // namespace splitsim::sync
