// Per-adapter profiling counters (paper §3.3, "Lightweight Instrumentation").
//
// Each SplitSim adapter continuously counts (1) CPU cycles blocked waiting
// for a synchronization message from the peer, (2) cycles spent sending data
// messages, and (3) cycles spent processing incoming data messages, plus
// message counts. The profiler post-processor turns these into simulation
// speed, per-simulator efficiency, and the wait-time profile graph.
#pragma once

#include <cstdint>

namespace splitsim::sync {

struct ProfCounters {
  std::uint64_t sync_wait_cycles = 0;  ///< blocked waiting for peer horizon
  std::uint64_t tx_cycles = 0;         ///< spent in send paths (incl. backpressure)
  std::uint64_t rx_cycles = 0;         ///< spent in message handlers
  std::uint64_t tx_msgs = 0;           ///< data messages sent
  std::uint64_t rx_msgs = 0;           ///< data messages received
  std::uint64_t tx_syncs = 0;          ///< sync (null) messages sent
  std::uint64_t rx_syncs = 0;          ///< sync (null) messages received
  /// Sends that hit a full ring (blocked or spilled). Not maintained on the
  /// send fast path: the channel end counts stalls in an atomic and the
  /// runtime copies the value here when it snapshots counters.
  std::uint64_t backpressure_stalls = 0;

  ProfCounters& operator+=(const ProfCounters& o) {
    sync_wait_cycles += o.sync_wait_cycles;
    tx_cycles += o.tx_cycles;
    rx_cycles += o.rx_cycles;
    tx_msgs += o.tx_msgs;
    rx_msgs += o.rx_msgs;
    tx_syncs += o.tx_syncs;
    rx_syncs += o.rx_syncs;
    backpressure_stalls += o.backpressure_stalls;
    return *this;
  }

  ProfCounters delta(const ProfCounters& earlier) const {
    ProfCounters d;
    d.sync_wait_cycles = sync_wait_cycles - earlier.sync_wait_cycles;
    d.tx_cycles = tx_cycles - earlier.tx_cycles;
    d.rx_cycles = rx_cycles - earlier.rx_cycles;
    d.tx_msgs = tx_msgs - earlier.tx_msgs;
    d.rx_msgs = rx_msgs - earlier.rx_msgs;
    d.tx_syncs = tx_syncs - earlier.tx_syncs;
    d.rx_syncs = rx_syncs - earlier.rx_syncs;
    d.backpressure_stalls = backpressure_stalls - earlier.backpressure_stalls;
    return d;
  }

  std::uint64_t overhead_cycles() const { return sync_wait_cycles + tx_cycles + rx_cycles; }
};

}  // namespace splitsim::sync
