#include "sync/fault.hpp"

namespace splitsim::sync {

FaultDecision ChannelFaultInjector::decide() {
  // Fixed variate consumption: three draws per message, whatever the
  // configuration, so the decision stream for message k is stable.
  const double u_drop = rng_.uniform();
  const double u_dup = rng_.uniform();
  const double u_delay = rng_.uniform();

  FaultDecision d;
  if (u_drop < cfg_.drop_prob) {
    d.drop = true;
    ++counters_.dropped;
  } else if (u_dup < cfg_.dup_prob) {
    d.duplicate = true;
    ++counters_.duplicated;
  } else if (cfg_.delay > 0 && u_delay < cfg_.delay_prob) {
    d.delay = cfg_.delay;
    ++counters_.delayed;
  }
  return d;
}

}  // namespace splitsim::sync
