#include "sync/shm.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <new>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sync/digest.hpp"

namespace splitsim::sync {

namespace {

constexpr std::uint64_t kShmMagic = 0x53706C53686D3031ull;  // "SplShm01"
constexpr std::uint32_t kShmVersion = 1;

struct alignas(64) ShmHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t slot_bytes;
  std::uint64_t channel_hash;
  std::uint64_t map_hash;
  std::uint64_t latency;
  std::uint32_t ring_capacity;
  std::uint32_t pad0;
  std::atomic<std::uint32_t> ready;
  std::atomic<std::uint32_t> abort;
  std::atomic<std::int32_t> pid[2];
};
static_assert(sizeof(ShmHeader) == 64, "header layout is part of the wire format");

std::size_t ring_block_bytes(std::size_t capacity) {
  return sizeof(RingState) + capacity * sizeof(Message);
}

std::size_t segment_bytes(std::size_t capacity) {
  return sizeof(ShmHeader) + 2 * ring_block_bytes(capacity);
}

[[noreturn]] void fail(const std::string& channel, const std::string& what) {
  throw TransportError(channel, "shm transport on channel '" + channel + "': " + what);
}

}  // namespace

std::string shm_segment_name(const std::string& run_id, const std::string& channel_name) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fnv1a(channel_name)));
  return "/ss." + run_id + "." + hex;
}

struct ShmChannelTransport::Mapping {
  int fd = -1;
  void* base = MAP_FAILED;
  std::size_t bytes = 0;

  ShmHeader* header() { return static_cast<ShmHeader*>(base); }
  unsigned char* at(std::size_t off) { return static_cast<unsigned char*>(base) + off; }

  ~Mapping() {
    if (base != MAP_FAILED) munmap(base, bytes);
    if (fd >= 0) close(fd);
  }
};

ShmChannelTransport::ShmChannelTransport(const ShmChannelParams& params)
    : params_(params), map_(std::make_unique<Mapping>()) {
  const std::string& chan = params_.channel_name;
  const std::size_t total = segment_bytes(params_.ring_capacity);
  map_->bytes = total;

  if (params_.create) {
    // A leftover segment from a crashed earlier run would make O_EXCL fail
    // forever; remove it first (we own this name for this run id).
    shm_unlink(params_.shm_name.c_str());
    map_->fd = shm_open(params_.shm_name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (map_->fd < 0) fail(chan, "shm_open(create " + params_.shm_name + "): " + std::strerror(errno));
    if (ftruncate(map_->fd, static_cast<off_t>(total)) != 0) {
      fail(chan, "ftruncate: " + std::string(std::strerror(errno)));
    }
  } else {
    // The creator may not have gotten there yet: retry the open until the
    // name appears (bounded), then wait for ready below.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(params_.open_timeout_ms);
    for (;;) {
      map_->fd = shm_open(params_.shm_name.c_str(), O_RDWR, 0600);
      if (map_->fd >= 0) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        fail(chan, "peer never created segment " + params_.shm_name +
                       " (is the peer process running?)");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Don't map past EOF (SIGBUS): wait for the creator's ftruncate.
    struct stat st{};
    for (;;) {
      if (fstat(map_->fd, &st) != 0) fail(chan, "fstat: " + std::string(std::strerror(errno)));
      if (static_cast<std::size_t>(st.st_size) >= total) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        fail(chan, "segment " + params_.shm_name + " stuck at " +
                       std::to_string(st.st_size) + " bytes (expected " +
                       std::to_string(total) + "): ring capacity mismatch?");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  map_->base = mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, map_->fd, 0);
  if (map_->base == MAP_FAILED) fail(chan, "mmap: " + std::string(std::strerror(errno)));

  RingState* st_a = reinterpret_cast<RingState*>(map_->at(sizeof(ShmHeader)));
  RingState* st_b = reinterpret_cast<RingState*>(
      map_->at(sizeof(ShmHeader) + ring_block_bytes(params_.ring_capacity)));
  Message* slots_a = reinterpret_cast<Message*>(
      map_->at(sizeof(ShmHeader) + sizeof(RingState)));
  Message* slots_b = reinterpret_cast<Message*>(
      map_->at(sizeof(ShmHeader) + ring_block_bytes(params_.ring_capacity) + sizeof(RingState)));

  if (params_.create) {
    new (st_a) RingState();
    new (st_b) RingState();
    ShmHeader* h = new (map_->base) ShmHeader();
    h->magic = kShmMagic;
    h->version = kShmVersion;
    h->slot_bytes = static_cast<std::uint32_t>(sizeof(Message));
    h->channel_hash = fnv1a(chan);
    h->map_hash = params_.map_hash;
    h->latency = params_.latency;
    h->ring_capacity = static_cast<std::uint32_t>(params_.ring_capacity);
    h->ready.store(1, std::memory_order_release);
  } else {
    ShmHeader* h = map_->header();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(params_.open_timeout_ms);
    while (h->ready.load(std::memory_order_acquire) == 0) {
      if (std::chrono::steady_clock::now() >= deadline) {
        fail(chan, "peer never initialized segment " + params_.shm_name);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (h->magic != kShmMagic) fail(chan, "bad magic (not a SplitSim channel segment)");
    if (h->version != kShmVersion) {
      fail(chan, "version mismatch: peer speaks v" + std::to_string(h->version) +
                     ", we speak v" + std::to_string(kShmVersion));
    }
    if (h->slot_bytes != sizeof(Message)) {
      fail(chan, "wire-format mismatch: peer slot size " + std::to_string(h->slot_bytes) +
                     " != ours " + std::to_string(sizeof(Message)));
    }
    if (h->ring_capacity != params_.ring_capacity) {
      fail(chan, "ring capacity mismatch: peer " + std::to_string(h->ring_capacity) +
                     " != ours " + std::to_string(params_.ring_capacity));
    }
    if (h->channel_hash != fnv1a(chan)) {
      fail(chan, "channel identity mismatch: segment was created for a different channel");
    }
    if (h->map_hash != params_.map_hash) {
      fail(chan, "channel-map mismatch: peer trunk carries a different subchannel map");
    }
    if (h->latency != params_.latency) {
      fail(chan, "latency mismatch: peer " + std::to_string(h->latency) + " != ours " +
                     std::to_string(params_.latency));
    }
  }

  ring_[0] = std::make_unique<MessageRing>(st_a, slots_a, params_.ring_capacity,
                                           /*futex_park=*/true);
  ring_[1] = std::make_unique<MessageRing>(st_b, slots_b, params_.ring_capacity,
                                           /*futex_park=*/true);
  // Wire accounting: one ring slot per message; park/wake counts come off
  // the futex slow paths of both rings (only the local side exercises them).
  wire_.fixed_frame_bytes = static_cast<std::uint32_t>(sizeof(Message));
  ring_[0]->set_park_counters(&wire_.futex_parks, &wire_.futex_wakes);
  ring_[1]->set_park_counters(&wire_.futex_parks, &wire_.futex_wakes);
}

ShmChannelTransport::~ShmChannelTransport() { stop(); }

MessageRing* ShmChannelTransport::tx_ring(int side) { return ring_[side == 0 ? 0 : 1].get(); }
MessageRing* ShmChannelTransport::rx_ring(int side) { return ring_[side == 0 ? 1 : 0].get(); }

void ShmChannelTransport::start() {
  ShmHeader* h = map_->header();
  const std::int32_t self = static_cast<std::int32_t>(getpid());
  if (params_.local_side == -1) {
    h->pid[0].store(self, std::memory_order_release);
    h->pid[1].store(self, std::memory_order_release);
  } else {
    h->pid[params_.local_side].store(self, std::memory_order_release);
  }
}

void ShmChannelTransport::stop() {
  if (stopped_) return;
  stopped_ = true;
  ShmHeader* h = map_->header();
  if (h != nullptr && map_->base != MAP_FAILED) {
    if (params_.local_side == -1) {
      h->pid[0].store(0, std::memory_order_release);
      h->pid[1].store(0, std::memory_order_release);
    } else {
      h->pid[params_.local_side].store(0, std::memory_order_release);
    }
  }
  // The name is per-run; by the time the creator stops, the peer has long
  // since opened (the handshake happens at construction), so unlinking only
  // removes the name — live mappings are unaffected.
  if (params_.create) shm_unlink(params_.shm_name.c_str());
}

std::string ShmChannelTransport::peer_failure(int side, bool fin_seen) {
  ShmHeader* h = map_->header();
  if (h->abort.load(std::memory_order_acquire) != 0) {
    return "peer process signalled abort on channel '" + params_.channel_name + "'";
  }
  if (fin_seen) return {};
  const int peer_side = side == 0 ? 1 : 0;
  const std::int32_t pid = h->pid[peer_side].load(std::memory_order_acquire);
  if (pid != 0 && kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
    return "peer process (pid " + std::to_string(pid) + ") feeding channel '" +
           params_.channel_name + "' died before FIN";
  }
  return {};
}

void ShmChannelTransport::signal_abort() {
  ShmHeader* h = map_->header();
  if (h != nullptr && map_->base != MAP_FAILED) {
    h->abort.store(1, std::memory_order_release);
    // Kick any producer parked on a full ring in either direction.
    futex_wake_all(&reinterpret_cast<RingState*>(map_->at(sizeof(ShmHeader)))->park_seq);
    futex_wake_all(&reinterpret_cast<RingState*>(
                        map_->at(sizeof(ShmHeader) + ring_block_bytes(params_.ring_capacity)))
                        ->park_seq);
  }
}

bool ShmChannelTransport::abort_signalled() const {
  return map_->header()->abort.load(std::memory_order_acquire) != 0;
}

}  // namespace splitsim::sync
