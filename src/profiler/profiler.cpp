#include "profiler/profiler.hpp"

#include <chrono>
#include <thread>

#include "util/cycles.hpp"

namespace splitsim::profiler {

static double measure_cycles_per_second() {
  using clock = std::chrono::steady_clock;
  auto t0 = clock::now();
  std::uint64_t c0 = rdcycles();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::uint64_t c1 = rdcycles();
  auto t1 = clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(c1 - c0) / secs;
}

double cycles_per_second() {
  static const double value = measure_cycles_per_second();
  return value;
}

const ComponentReport* ProfileReport::find(const std::string& name) const {
  for (const auto& c : components) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace splitsim::profiler
