#include "profiler/profiler.hpp"

namespace splitsim::profiler {

const ComponentReport* ProfileReport::find(const std::string& name) const {
  for (const auto& c : components) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

}  // namespace splitsim::profiler
