#include <algorithm>
#include <iomanip>
#include <sstream>
#include <unordered_map>

#include "profiler/profiler.hpp"
#include "util/table.hpp"

namespace splitsim::profiler {

namespace {

/// Counter deltas over the stable window of a sampled run: drop warm-up and
/// cool-down entries and diff a late sample against an early one.
struct Window {
  bool valid = false;
  std::uint64_t tsc_delta = 0;
  SimTime sim_delta = 0;
  std::vector<sync::ProfCounters> deltas;
};

Window sample_window(const runtime::ComponentStats& cs, std::size_t warmup,
                     std::size_t cooldown) {
  Window w;
  const auto& s = cs.samples;
  if (s.size() < warmup + cooldown + 2) return w;
  const runtime::ProfSample& early = s[warmup];
  const runtime::ProfSample& late = s[s.size() - 1 - cooldown];
  if (late.tsc <= early.tsc) return w;
  w.valid = true;
  w.tsc_delta = late.tsc - early.tsc;
  w.sim_delta = late.sim_time - early.sim_time;
  w.deltas.reserve(late.adapters.size());
  for (std::size_t i = 0; i < late.adapters.size() && i < early.adapters.size(); ++i) {
    w.deltas.push_back(late.adapters[i].delta(early.adapters[i]));
  }
  return w;
}

}  // namespace

ProfileReport build_report(const runtime::RunStats& stats, std::size_t drop_warmup,
                           std::size_t drop_cooldown) {
  ProfileReport rep;
  rep.mode = stats.mode;
  rep.sim_seconds = stats.sim_seconds();
  rep.wall_seconds = stats.wall_seconds;
  rep.sim_speed = stats.sim_speed();

  // Parallel modes (threaded, pooled) carry real per-component wall-clock
  // windows; coscheduled totals are interleaved on one thread instead.
  const bool threaded = stats.mode != runtime::RunMode::kCoscheduled;

  // Pass 1: per-component raw numbers.
  for (const auto& cs : stats.components) {
    ComponentReport cr;
    cr.name = cs.name;
    cr.busy_cycles = cs.busy_cycles;
    cr.wall_cycles = cs.wall_cycles;
    cr.events = cs.events;

    Window win = sample_window(cs, drop_warmup, drop_cooldown);

    std::uint64_t wall = cs.wall_cycles ? cs.wall_cycles : 1;
    std::uint64_t overhead = 0;
    std::uint64_t waiting = 0;
    for (std::size_t i = 0; i < cs.adapters.size(); ++i) {
      AdapterReport ar;
      ar.adapter = cs.adapters[i].adapter;
      ar.component = cs.adapters[i].component;
      ar.peer_component = cs.adapters[i].peer_component;
      ar.counters = (threaded && win.valid && i < win.deltas.size()) ? win.deltas[i]
                                                                     : cs.adapters[i].totals;
      std::uint64_t denom = (threaded && win.valid) ? win.tsc_delta : wall;
      if (denom == 0) denom = 1;
      ar.wait_fraction =
          static_cast<double>(ar.counters.sync_wait_cycles) / static_cast<double>(denom);
      overhead += ar.counters.overhead_cycles();
      waiting += ar.counters.sync_wait_cycles;
      cr.adapters.push_back(std::move(ar));
    }

    if (threaded) {
      std::uint64_t denom = win.valid ? win.tsc_delta : wall;
      if (denom == 0) denom = 1;
      cr.efficiency = 1.0 - std::min<double>(1.0, static_cast<double>(overhead) /
                                                      static_cast<double>(denom));
      cr.waiting_fraction =
          std::min(1.0, static_cast<double>(waiting) / static_cast<double>(denom));
    }
    if (rep.sim_seconds > 0.0) {
      cr.load_cycles_per_simsec = static_cast<double>(cs.busy_cycles) / rep.sim_seconds;
    }
    rep.components.push_back(std::move(cr));
  }

  if (!threaded) {
    // Coscheduled: derive waiting from load imbalance. With conservative
    // per-channel synchronization the simulation advances at the pace of the
    // most loaded component; everyone else would spend the load difference
    // waiting in a parallel run.
    double max_load = 0.0;
    std::unordered_map<std::string, double> load_by_name;
    for (const auto& c : rep.components) {
      max_load = std::max(max_load, c.load_cycles_per_simsec);
      load_by_name[c.name] = c.load_cycles_per_simsec;
    }
    for (auto& c : rep.components) {
      if (max_load > 0.0) {
        c.waiting_fraction = 1.0 - c.load_cycles_per_simsec / max_load;
      }
      // Efficiency: useful work as a fraction of the bottleneck pace.
      c.efficiency = max_load > 0.0 ? c.load_cycles_per_simsec / max_load : 1.0;
      for (auto& a : c.adapters) {
        auto it = load_by_name.find(a.peer_component);
        double peer_load = it == load_by_name.end() ? 0.0 : it->second;
        if (peer_load > c.load_cycles_per_simsec && peer_load > 0.0) {
          a.wait_fraction = 1.0 - c.load_cycles_per_simsec / peer_load;
        } else {
          a.wait_fraction = 0.0;
        }
      }
    }
  }
  return rep;
}

double project_wall_seconds(const ProfileReport& report, const PerfModelConfig& cfg) {
  double bottleneck = 0.0;
  double total = 0.0;
  for (const auto& c : report.components) {
    double load = static_cast<double>(c.busy_cycles);
    for (const auto& a : c.adapters) {
      load += cfg.cycles_per_sync *
              static_cast<double>(a.counters.tx_syncs + a.counters.rx_syncs);
      load += cfg.cycles_per_data_msg *
              static_cast<double>(a.counters.tx_msgs + a.counters.rx_msgs);
    }
    bottleneck = std::max(bottleneck, load);
    total += load;
  }
  unsigned cores = cfg.cores == 0 ? 1 : cfg.cores;
  double wall_cycles = std::max(bottleneck, total / static_cast<double>(cores));
  return wall_cycles / cycles_per_second();
}

double project_sim_speed(const ProfileReport& report, const PerfModelConfig& cfg) {
  double wall = project_wall_seconds(report, cfg);
  return wall > 0.0 ? report.sim_seconds / wall : 0.0;
}

std::string format_report(const ProfileReport& report) {
  std::ostringstream os;
  os << "simulated " << report.sim_seconds << " s in " << report.wall_seconds
     << " s wall => sim speed " << report.sim_speed << " sim-s/wall-s\n";
  Table t({"component", "events", "busy Mcyc", "load Mcyc/sim-s", "wait frac", "efficiency"});
  auto sorted = report.components;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.load_cycles_per_simsec > b.load_cycles_per_simsec;
  });
  for (const auto& c : sorted) {
    t.add_row({c.name, std::to_string(c.events), Table::num(c.busy_cycles / 1e6, 1),
               Table::num(c.load_cycles_per_simsec / 1e6, 1), Table::num(c.waiting_fraction, 3),
               Table::num(c.efficiency, 3)});
  }
  os << t.to_string();
  return os.str();
}

}  // namespace splitsim::profiler
