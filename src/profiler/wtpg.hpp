// Wait-Time Profile Graph (paper §3.3.2): one node per simulator instance,
// a pair of opposite directed edges per SplitSim channel, each edge labeled
// with the fraction of cycles the source spent waiting for synchronization
// messages from the destination. Nodes are colored on a green→red spectrum:
// red nodes rarely wait — they are the bottleneck.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "profiler/profiler.hpp"
#include "util/dot.hpp"

namespace splitsim::profiler {

/// Build the WTPG as a GraphViz DOT graph.
DotGraph build_wtpg(const ProfileReport& report, const std::string& graph_name = "wtpg");

/// Compact textual rendering (nodes sorted by waiting fraction, edges with
/// non-negligible waiting), for terminals without GraphViz.
std::string format_wtpg(const ProfileReport& report, double min_edge_fraction = 0.01);

/// Live (mid-run) wait-time profile: the same edge accounting as the
/// post-run WTPG, accumulated epoch by epoch with exponential decay so the
/// picture tracks the *current* bottleneck instead of the whole-run
/// average. Fed by the pooled runner's per-epoch blocked-wait attribution
/// (runtime::PooledEpochWait) and consumed by the adaptive controller
/// (orch/adaptive.hpp) to decide rebalances and sync-interval retunes.
///
/// Single-threaded by design: the controller calls add_wait/end_epoch under
/// the pooled scheduler lock.
class LiveWtpg {
 public:
  /// `alpha` is the EWMA weight of the newest epoch in [0,1]; 1 = only the
  /// last epoch matters, small values smooth over transient stalls.
  explicit LiveWtpg(double alpha = 0.5) : alpha_(alpha) {}

  struct Edge {
    std::string from;       ///< waiting component
    std::string to;         ///< peer it waited on
    double wait_fraction;   ///< EWMA of wait_cycles / epoch wall_cycles
  };

  /// Accumulate blocked-wait cycles for the current epoch on edge from→to.
  void add_wait(const std::string& from, const std::string& to, std::uint64_t cycles);

  /// Close the current epoch (`wall_cycles` = its wall-clock length) and
  /// fold the per-edge fractions into the EWMA. Edges with no wait this
  /// epoch decay toward zero.
  void end_epoch(std::uint64_t wall_cycles);

  /// Current edges, hottest first (edges decayed below `min_fraction` are
  /// dropped from the result, not from the internal state).
  std::vector<Edge> edges(double min_fraction = 0.005) const;

  /// Compact textual rendering of edges() for logs and trace annotations.
  std::string format(double min_fraction = 0.01) const;

 private:
  struct Acc {
    std::string from;
    std::string to;
    std::uint64_t pending = 0;  ///< cycles accumulated this epoch
    double ewma = 0.0;
  };
  Acc& find_or_add(const std::string& from, const std::string& to);

  double alpha_;
  std::vector<Acc> accs_;  ///< small edge sets: linear scan beats a map
};

}  // namespace splitsim::profiler
