// Wait-Time Profile Graph (paper §3.3.2): one node per simulator instance,
// a pair of opposite directed edges per SplitSim channel, each edge labeled
// with the fraction of cycles the source spent waiting for synchronization
// messages from the destination. Nodes are colored on a green→red spectrum:
// red nodes rarely wait — they are the bottleneck.
#pragma once

#include <string>

#include "profiler/profiler.hpp"
#include "util/dot.hpp"

namespace splitsim::profiler {

/// Build the WTPG as a GraphViz DOT graph.
DotGraph build_wtpg(const ProfileReport& report, const std::string& graph_name = "wtpg");

/// Compact textual rendering (nodes sorted by waiting fraction, edges with
/// non-negligible waiting), for terminals without GraphViz.
std::string format_wtpg(const ProfileReport& report, double min_edge_fraction = 0.01);

}  // namespace splitsim::profiler
