// File-based profiler workflow (paper §3.3: simulators periodically log
// counter values; "after the simulation terminates ... the profiler post
// processor ingests and parses these logs").
//
// write_profile_logs emits one plain-text log per component simulator;
// read_profile_logs parses a directory of them back into RunStats, from
// which profiler::build_report computes the same metrics and WTPG as the
// in-memory path. This decouples post-processing from the simulation run,
// exactly like the paper's workflow.
#pragma once

#include <string>

#include "runtime/runner.hpp"

namespace splitsim::profiler {

/// Write one `<component>.sslog` per component into `dir` (created if
/// missing). Includes counter totals and any periodic samples.
void write_profile_logs(const runtime::RunStats& stats, const std::string& dir);

/// Parse every `*.sslog` in `dir` back into run statistics.
runtime::RunStats read_profile_logs(const std::string& dir);

}  // namespace splitsim::profiler
