#include "profiler/logfile.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace splitsim::profiler {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '/' || c == '\\' || c == ' ') c = '_';
  }
  return out;
}

void write_counters(std::ostream& os, const char* tag, std::size_t idx,
                    const sync::ProfCounters& c) {
  os << tag << " " << idx << " " << c.sync_wait_cycles << " " << c.tx_cycles << " "
     << c.rx_cycles << " " << c.tx_msgs << " " << c.rx_msgs << " " << c.tx_syncs << " "
     << c.rx_syncs << " " << c.backpressure_stalls << "\n";
}

sync::ProfCounters parse_counters(std::istringstream& in) {
  sync::ProfCounters c;
  in >> c.sync_wait_cycles >> c.tx_cycles >> c.rx_cycles >> c.tx_msgs >> c.rx_msgs >>
      c.tx_syncs >> c.rx_syncs;
  // The stall column was appended in format rev 1.1; logs written before it
  // simply leave the field zero (the failed extraction is reset below).
  if (!(in >> c.backpressure_stalls)) {
    in.clear();
    c.backpressure_stalls = 0;
  }
  return c;
}

}  // namespace

void write_profile_logs(const runtime::RunStats& stats, const std::string& dir) {
  std::filesystem::create_directories(dir);
  // A shared header file carries the run-level values.
  {
    std::ofstream run(dir + "/run.sslog");
    run << "# splitsim-profile 1\n";
    run << "mode " << runtime::to_string(stats.mode) << "\n";
    run << "simtime " << stats.sim_time << "\n";
    run << "wall_cycles " << stats.wall_cycles << "\n";
    run << "wall_seconds " << stats.wall_seconds << "\n";
  }
  for (const auto& cs : stats.components) {
    std::ofstream os(dir + "/" + sanitize(cs.name) + ".sslog");
    os << "# splitsim-profile 1\n";
    os << "component " << cs.name << "\n";
    os << "busy_cycles " << cs.busy_cycles << "\n";
    os << "wall_cycles " << cs.wall_cycles << "\n";
    os << "batches " << cs.batches << "\n";
    os << "events " << cs.events << "\n";
    for (std::size_t i = 0; i < cs.adapters.size(); ++i) {
      const auto& a = cs.adapters[i];
      os << "adapter " << i << " " << a.adapter << " "
         << (a.peer_component.empty() ? "-" : a.peer_component) << " " << a.channel_latency
         << "\n";
      write_counters(os, "total", i, a.totals);
    }
    for (const auto& s : cs.samples) {
      os << "sample " << s.tsc << " " << s.sim_time << "\n";
      for (std::size_t i = 0; i < s.adapters.size(); ++i) {
        write_counters(os, "ctr", i, s.adapters[i]);
      }
    }
  }
}

runtime::RunStats read_profile_logs(const std::string& dir) {
  runtime::RunStats stats;
  // Run header.
  {
    std::ifstream run(dir + "/run.sslog");
    if (!run) throw std::runtime_error("read_profile_logs: missing run.sslog in " + dir);
    std::string line;
    while (std::getline(run, line)) {
      std::istringstream in(line);
      std::string key;
      in >> key;
      if (key == "mode") {
        std::string v;
        in >> v;
        stats.mode = v == "threaded" ? runtime::RunMode::kThreaded
                     : v == "pooled" ? runtime::RunMode::kPooled
                                     : runtime::RunMode::kCoscheduled;
      } else if (key == "simtime") {
        in >> stats.sim_time;
      } else if (key == "wall_cycles") {
        in >> stats.wall_cycles;
      } else if (key == "wall_seconds") {
        in >> stats.wall_seconds;
      }
    }
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".sslog" || entry.path().filename() == "run.sslog") {
      continue;
    }
    std::ifstream is(entry.path());
    runtime::ComponentStats cs;
    runtime::ProfSample* current_sample = nullptr;
    std::string line;
    while (std::getline(is, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream in(line);
      std::string key;
      in >> key;
      if (key == "component") {
        in >> cs.name;
      } else if (key == "busy_cycles") {
        in >> cs.busy_cycles;
      } else if (key == "wall_cycles") {
        in >> cs.wall_cycles;
      } else if (key == "batches") {
        in >> cs.batches;
      } else if (key == "events") {
        in >> cs.events;
      } else if (key == "adapter") {
        std::size_t idx;
        runtime::AdapterStats as;
        in >> idx >> as.adapter >> as.peer_component >> as.channel_latency;
        if (as.peer_component == "-") as.peer_component.clear();
        as.component = cs.name;
        if (idx != cs.adapters.size()) {
          throw std::runtime_error("read_profile_logs: adapter index out of order");
        }
        cs.adapters.push_back(std::move(as));
      } else if (key == "total") {
        std::size_t idx;
        in >> idx;
        if (idx >= cs.adapters.size()) {
          throw std::runtime_error("read_profile_logs: total before adapter");
        }
        cs.adapters[idx].totals = parse_counters(in);
      } else if (key == "sample") {
        runtime::ProfSample s;
        in >> s.tsc >> s.sim_time;
        cs.samples.push_back(std::move(s));
        current_sample = &cs.samples.back();
      } else if (key == "ctr") {
        std::size_t idx;
        in >> idx;
        if (current_sample == nullptr) {
          throw std::runtime_error("read_profile_logs: ctr before sample");
        }
        if (idx != current_sample->adapters.size()) {
          throw std::runtime_error("read_profile_logs: ctr index out of order");
        }
        current_sample->adapters.push_back(parse_counters(in));
      }
    }
    stats.components.push_back(std::move(cs));
  }
  return stats;
}

}  // namespace splitsim::profiler
