// SplitSim profiler (paper §3.3): turns the lightweight per-adapter
// instrumentation collected during a run into user-facing metrics —
// global simulation speed, per-simulator efficiency, per-channel waiting
// fractions — and the wait-time profile graph (WTPG).
//
// Two data sources are supported:
//  * Threaded runs: measured wall cycles and measured sync-wait cycles per
//    adapter (this is the paper's exact pipeline).
//  * Coscheduled runs (one thread; used to measure compute load precisely
//    on machines with fewer cores than simulated components): waiting is
//    *derived* from load imbalance — with conservative synchronization the
//    whole simulation advances at the pace of the most loaded component, so
//    a component with load L_i waits a fraction 1 - L_i / L_max of its wall
//    time. A calibrated performance model then projects wall-clock time for
//    a machine with a given core count (see PerfModelConfig).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/runner.hpp"
#include "util/cycles.hpp"
#include "util/time.hpp"

namespace splitsim::profiler {

// Wall-cycle calibration (`cycles_per_second()`, measured once and cached
// thread-safely) lives in util/cycles.hpp as splitsim::cycles_per_second so
// layers below the profiler (obs, runtime) can use it too; unqualified
// calls from this nested namespace resolve to it.

/// Cost model for projecting parallel execution from coscheduled
/// measurements. Defaults calibrated for cross-core shared-memory channels.
struct PerfModelConfig {
  /// Extra cycles per sync (null) message when peers run on separate cores
  /// (cache-line transfer + polling) — absent from single-thread runs.
  double cycles_per_sync = 120.0;
  /// Extra cycles per data message crossing cores.
  double cycles_per_data_msg = 250.0;
  /// Available physical cores of the (possibly hypothetical) machine.
  unsigned cores = 48;
};

struct AdapterReport {
  std::string adapter;
  std::string component;
  std::string peer_component;
  sync::ProfCounters counters;
  /// Fraction of the component's wall time spent waiting on this peer.
  double wait_fraction = 0.0;
};

struct ComponentReport {
  std::string name;
  std::uint64_t busy_cycles = 0;
  std::uint64_t wall_cycles = 0;
  std::uint64_t events = 0;
  /// Fraction of cycles NOT spent in adapter rx/tx/sync (paper: "efficiency").
  double efficiency = 1.0;
  /// Fraction of wall time waiting for peers (drives the WTPG node color).
  double waiting_fraction = 0.0;
  /// Compute load in cycles per simulated second (projection input).
  double load_cycles_per_simsec = 0.0;
  std::vector<AdapterReport> adapters;
};

struct ProfileReport {
  runtime::RunMode mode = runtime::RunMode::kCoscheduled;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  /// Measured simulation speed (simulated seconds per wall second).
  double sim_speed = 0.0;
  std::vector<ComponentReport> components;

  const ComponentReport* find(const std::string& name) const;
};

/// Build a report from run statistics. For threaded runs with samples, a
/// configurable number of warm-up and cool-down log entries is dropped
/// before computing counter deltas (paper §3.3.2).
ProfileReport build_report(const runtime::RunStats& stats, std::size_t drop_warmup = 1,
                           std::size_t drop_cooldown = 0);

/// Projected wall-clock seconds for running this simulation on a machine
/// described by `cfg`, derived from per-component loads:
///   wall = max( max_i L_i, sum_i L_i / cores ),  L_i incl. channel costs.
double project_wall_seconds(const ProfileReport& report, const PerfModelConfig& cfg);

/// Projected simulation speed (simulated seconds per wall second).
double project_sim_speed(const ProfileReport& report, const PerfModelConfig& cfg);

/// Human-readable profile summary table.
std::string format_report(const ProfileReport& report);

}  // namespace splitsim::profiler
