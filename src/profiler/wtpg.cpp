#include "profiler/wtpg.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/table.hpp"

namespace splitsim::profiler {

DotGraph build_wtpg(const ProfileReport& report, const std::string& graph_name) {
  DotGraph g(graph_name);
  for (const auto& c : report.components) {
    std::ostringstream label;
    label << c.name << "\\nwait " << std::fixed << std::setprecision(0)
          << c.waiting_fraction * 100.0 << "%";
    g.add_node(c.name, {{"label", label.str()},
                        {"fillcolor", DotGraph::heat_color(c.waiting_fraction)}});
  }
  for (const auto& c : report.components) {
    for (const auto& a : c.adapters) {
      if (a.peer_component.empty()) continue;
      std::ostringstream label;
      label << std::fixed << std::setprecision(2) << a.wait_fraction;
      g.add_edge(c.name, a.peer_component, {{"label", label.str()}});
    }
  }
  return g;
}

std::string format_wtpg(const ProfileReport& report, double min_edge_fraction) {
  std::ostringstream os;
  auto sorted = report.components;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.waiting_fraction < b.waiting_fraction;
  });
  Table nodes({"component", "wait frac", "verdict"});
  for (const auto& c : sorted) {
    std::string verdict = c.waiting_fraction < 0.05  ? "BOTTLENECK (red)"
                          : c.waiting_fraction < 0.4 ? "busy (orange)"
                                                     : "mostly waiting (green)";
    nodes.add_row({c.name, Table::num(c.waiting_fraction, 3), verdict});
  }
  os << nodes.to_string();
  Table edges({"waits", "on", "fraction"});
  bool any = false;
  for (const auto& c : report.components) {
    for (const auto& a : c.adapters) {
      if (a.peer_component.empty() || a.wait_fraction < min_edge_fraction) continue;
      edges.add_row({c.name, a.peer_component, Table::num(a.wait_fraction, 3)});
      any = true;
    }
  }
  if (any) os << "\n" << edges.to_string();
  return os.str();
}

// ---- LiveWtpg ----------------------------------------------------------

LiveWtpg::Acc& LiveWtpg::find_or_add(const std::string& from, const std::string& to) {
  for (auto& a : accs_) {
    if (a.from == from && a.to == to) return a;
  }
  accs_.push_back(Acc{from, to, 0, 0.0});
  return accs_.back();
}

void LiveWtpg::add_wait(const std::string& from, const std::string& to, std::uint64_t cycles) {
  find_or_add(from, to).pending += cycles;
}

void LiveWtpg::end_epoch(std::uint64_t wall_cycles) {
  if (wall_cycles == 0) {
    for (auto& a : accs_) a.pending = 0;
    return;
  }
  for (auto& a : accs_) {
    double frac = static_cast<double>(a.pending) / static_cast<double>(wall_cycles);
    if (frac > 1.0) frac = 1.0;  // TSC skew across workers can overshoot
    a.ewma = alpha_ * frac + (1.0 - alpha_) * a.ewma;
    a.pending = 0;
  }
}

std::vector<LiveWtpg::Edge> LiveWtpg::edges(double min_fraction) const {
  std::vector<Edge> out;
  for (const auto& a : accs_) {
    if (a.ewma < min_fraction) continue;
    out.push_back(Edge{a.from, a.to, a.ewma});
  }
  std::sort(out.begin(), out.end(),
            [](const Edge& x, const Edge& y) { return x.wait_fraction > y.wait_fraction; });
  return out;
}

std::string LiveWtpg::format(double min_fraction) const {
  std::ostringstream os;
  bool first = true;
  for (const auto& e : edges(min_fraction)) {
    if (!first) os << ", ";
    os << e.from << "->" << e.to << " " << std::fixed << std::setprecision(2)
       << e.wait_fraction;
    first = false;
  }
  return os.str();
}

}  // namespace splitsim::profiler
