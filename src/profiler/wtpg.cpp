#include "profiler/wtpg.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/table.hpp"

namespace splitsim::profiler {

DotGraph build_wtpg(const ProfileReport& report, const std::string& graph_name) {
  DotGraph g(graph_name);
  for (const auto& c : report.components) {
    std::ostringstream label;
    label << c.name << "\\nwait " << std::fixed << std::setprecision(0)
          << c.waiting_fraction * 100.0 << "%";
    g.add_node(c.name, {{"label", label.str()},
                        {"fillcolor", DotGraph::heat_color(c.waiting_fraction)}});
  }
  for (const auto& c : report.components) {
    for (const auto& a : c.adapters) {
      if (a.peer_component.empty()) continue;
      std::ostringstream label;
      label << std::fixed << std::setprecision(2) << a.wait_fraction;
      g.add_edge(c.name, a.peer_component, {{"label", label.str()}});
    }
  }
  return g;
}

std::string format_wtpg(const ProfileReport& report, double min_edge_fraction) {
  std::ostringstream os;
  auto sorted = report.components;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.waiting_fraction < b.waiting_fraction;
  });
  Table nodes({"component", "wait frac", "verdict"});
  for (const auto& c : sorted) {
    std::string verdict = c.waiting_fraction < 0.05  ? "BOTTLENECK (red)"
                          : c.waiting_fraction < 0.4 ? "busy (orange)"
                                                     : "mostly waiting (green)";
    nodes.add_row({c.name, Table::num(c.waiting_fraction, 3), verdict});
  }
  os << nodes.to_string();
  Table edges({"waits", "on", "fraction"});
  bool any = false;
  for (const auto& c : report.components) {
    for (const auto& a : c.adapters) {
      if (a.peer_component.empty() || a.wait_fraction < min_edge_fraction) continue;
      edges.add_row({c.name, a.peer_component, Table::num(a.wait_fraction, 3)});
      any = true;
    }
  }
  if (any) os << "\n" << edges.to_string();
  return os.str();
}

}  // namespace splitsim::profiler
