// Simulation time representation shared by every SplitSim component.
//
// All simulators in a SplitSim simulation agree on a single virtual time base.
// We use picoseconds in a 64-bit unsigned integer: 20 simulated seconds is
// 2e13 ps, leaving ample headroom (2^64 ps ~ 213 days of simulated time).
#pragma once

#include <cstdint>
#include <limits>

namespace splitsim {

/// Virtual (simulated) time in picoseconds.
using SimTime = std::uint64_t;

/// Sentinel for "no pending event / unbounded horizon".
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

namespace timeunit {
inline constexpr SimTime ps = 1;
inline constexpr SimTime ns = 1000 * ps;
inline constexpr SimTime us = 1000 * ns;
inline constexpr SimTime ms = 1000 * us;
inline constexpr SimTime sec = 1000 * ms;
}  // namespace timeunit

constexpr SimTime from_ns(double v) { return static_cast<SimTime>(v * timeunit::ns); }
constexpr SimTime from_us(double v) { return static_cast<SimTime>(v * timeunit::us); }
constexpr SimTime from_ms(double v) { return static_cast<SimTime>(v * timeunit::ms); }
constexpr SimTime from_sec(double v) { return static_cast<SimTime>(v * timeunit::sec); }

constexpr double to_ns(SimTime t) { return static_cast<double>(t) / timeunit::ns; }
constexpr double to_us(SimTime t) { return static_cast<double>(t) / timeunit::us; }
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / timeunit::ms; }
constexpr double to_sec(SimTime t) { return static_cast<double>(t) / timeunit::sec; }

/// Bandwidth in bits per second; helper to compute serialization delay.
struct Bandwidth {
  double bits_per_sec = 0.0;

  static constexpr Bandwidth mbps(double v) { return Bandwidth{v * 1e6}; }
  static constexpr Bandwidth gbps(double v) { return Bandwidth{v * 1e9}; }

  /// Time to serialize `bytes` onto a link of this bandwidth.
  constexpr SimTime tx_time(std::uint64_t bytes) const {
    if (bits_per_sec <= 0.0) return 0;
    double secs = static_cast<double>(bytes) * 8.0 / bits_per_sec;
    return static_cast<SimTime>(secs * static_cast<double>(timeunit::sec));
  }
};

}  // namespace splitsim
