// Zipfian key-popularity distribution, used by the NetCache/Pegasus KV
// workloads (the paper configures "skewed zipf 1.8 key distribution").
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace splitsim {

/// Samples integers in [0, n) with probability proportional to 1/(i+1)^theta.
/// Uses a precomputed inverse-CDF table; sampling is O(log n).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Probability mass of rank i (for tests and cache-hit-rate math).
  double pmf(std::uint64_t i) const;

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace splitsim
