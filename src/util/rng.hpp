// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic model element (traffic generators, clock noise, workload
// key choice, ...) owns its own Rng seeded from the experiment seed plus a
// stable stream id, so results are reproducible regardless of thread
// interleaving and of how many components run in parallel.
#pragma once

#include <cstdint>

namespace splitsim {

/// xoshiro256** — small, fast, high-quality PRNG. Deterministic across
/// platforms (unlike distributions in <random>, whose outputs are
/// implementation-defined); we therefore implement our own distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Derive an independent stream: same seed + different id => different,
  /// reproducible sequence.
  Rng(std::uint64_t seed, std::uint64_t stream) { reseed(seed ^ splitmix(stream + 0x1234567)); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (deterministic).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  static std::uint64_t splitmix(std::uint64_t x);

 private:
  std::uint64_t s_[4] = {};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace splitsim
