// ASCII table printer: the bench harnesses print the same rows/series the
// paper's tables and figures report, in aligned columns.
#pragma once

#include <string>
#include <vector>

namespace splitsim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace splitsim
