#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace splitsim {

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace splitsim
