#include "util/dot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace splitsim {

void DotGraph::add_node(const std::string& id, std::map<std::string, std::string> attrs) {
  for (auto& n : nodes_) {
    if (n.id == id) {
      for (auto& [k, v] : attrs) n.attrs[k] = v;
      return;
    }
  }
  nodes_.push_back({id, std::move(attrs)});
}

void DotGraph::add_edge(const std::string& from, const std::string& to,
                        std::map<std::string, std::string> attrs) {
  edges_.push_back({from, to, std::move(attrs)});
}

std::string DotGraph::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string DotGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph " << escape(name_) << " {\n";
  os << "  node [shape=box, style=filled];\n";
  for (const auto& n : nodes_) {
    os << "  " << escape(n.id);
    if (!n.attrs.empty()) {
      os << " [";
      bool first = true;
      for (const auto& [k, v] : n.attrs) {
        if (!first) os << ", ";
        first = false;
        os << k << "=" << escape(v);
      }
      os << "]";
    }
    os << ";\n";
  }
  for (const auto& e : edges_) {
    os << "  " << escape(e.from) << " -> " << escape(e.to);
    if (!e.attrs.empty()) {
      os << " [";
      bool first = true;
      for (const auto& [k, v] : e.attrs) {
        if (!first) os << ", ";
        first = false;
        os << k << "=" << escape(v);
      }
      os << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string DotGraph::heat_color(double waiting_fraction) {
  double f = std::clamp(waiting_fraction, 0.0, 1.0);
  // f = 0 (never waits, bottleneck) -> red; f = 1 (always waits) -> green.
  int r = static_cast<int>(std::lround(255.0 * (1.0 - f)));
  int g = static_cast<int>(std::lround(255.0 * f));
  char buf[16];
  std::snprintf(buf, sizeof buf, "#%02x%02x40", r, g);
  return buf;
}

}  // namespace splitsim
