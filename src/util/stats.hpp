// Small statistics toolkit used by benches and case-study measurements:
// running summaries, percentile extraction, CDFs, and rate counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace splitsim {

/// Accumulates samples; computes mean/stddev/min/max and percentiles.
/// Keeps all samples (fine for the sample counts our experiments produce).
class Summary {
 public:
  void add(double v);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// p in [0, 100]; linear interpolation between order statistics.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

/// Point on an empirical CDF.
struct CdfPoint {
  double value;
  double cum_prob;
};

/// Empirical CDF of a sample set, optionally downsampled to at most
/// `max_points` points (for printing paper-style CDF figures as text).
std::vector<CdfPoint> make_cdf(const std::vector<double>& samples,
                               std::size_t max_points = 64);

/// Render a CDF as an ASCII table: "value cum_prob" rows.
std::string format_cdf(const std::vector<CdfPoint>& cdf, const std::string& value_unit);

/// Counts events over simulated time and reports a rate.
class RateCounter {
 public:
  void record(std::uint64_t n = 1) { count_ += n; }
  std::uint64_t count() const { return count_; }

  /// Events per simulated second over [start, end].
  double rate_per_sec(SimTime start, SimTime end) const;

 private:
  std::uint64_t count_ = 0;
};

}  // namespace splitsim
