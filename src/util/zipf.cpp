#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace splitsim {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against fp rounding
}

std::uint64_t ZipfGenerator::sample(Rng& rng) const {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfGenerator::pmf(std::uint64_t i) const {
  if (i >= n_) return 0.0;
  double prev = i == 0 ? 0.0 : cdf_[i - 1];
  return cdf_[i] - prev;
}

}  // namespace splitsim
