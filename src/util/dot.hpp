// Minimal GraphViz DOT emitter, used by the profiler to render
// wait-time-profile graphs (paper Fig. 3 / Fig. 10).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace splitsim {

/// Builds a directed graph and serializes it to DOT text.
class DotGraph {
 public:
  explicit DotGraph(std::string name) : name_(std::move(name)) {}

  /// Adds (or updates) a node. Attributes are raw DOT attribute values.
  void add_node(const std::string& id, std::map<std::string, std::string> attrs = {});

  void add_edge(const std::string& from, const std::string& to,
                std::map<std::string, std::string> attrs = {});

  std::string to_dot() const;

  /// Maps a fraction in [0,1] to a green(1.0)..red(0.0) fill color, matching
  /// the paper's convention: green = mostly waiting (not a bottleneck),
  /// red = rarely waiting (bottleneck).
  static std::string heat_color(double waiting_fraction);

 private:
  static std::string escape(const std::string& s);

  std::string name_;
  struct Node {
    std::string id;
    std::map<std::string, std::string> attrs;
  };
  struct Edge {
    std::string from, to;
    std::map<std::string, std::string> attrs;
  };
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace splitsim
