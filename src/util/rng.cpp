#include "util/rng.hpp"

#include <cmath>

namespace splitsim {

std::uint64_t Rng::splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void Rng::reseed(std::uint64_t seed) {
  // Expand the seed through splitmix64 as recommended by the xoshiro authors.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x = splitmix(x);
    s = x;
  }
  have_spare_normal_ = false;
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next() {
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  have_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

}  // namespace splitsim
