// Cheap wall-clock cycle counter used by the SplitSim profiler.
//
// The profiler (paper §3.3) counts host CPU cycles spent blocked on channel
// synchronization, transmitting, and receiving. On x86 we read the TSC
// directly (a handful of cycles per read); elsewhere we fall back to
// steady_clock nanoseconds, which are monotone and proportional to cycles
// for our purposes (ratios of durations).
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace splitsim {

/// Current value of a monotone per-host cycle counter.
inline std::uint64_t rdcycles() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Wall cycles per second of the rdcycles() clock. Calibrated exactly once
/// per process (std::once_flag; ~20ms sleep against steady_clock) and
/// cached; safe to call concurrently from any thread. Call it once at
/// startup if the first use would otherwise land on a latency-sensitive
/// path (orchestrated runs do this before starting component threads).
double cycles_per_second();

/// Hint to the CPU that we are in a spin-wait loop.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  _mm_pause();
#endif
}

// ---------------------------------------------------------------------------
// Virtual cycle accounting.
//
// Some models represent *host* work that a real deployment would burn (the
// per-instruction cost of a detailed simulator, MPI barrier overhead, ...).
// Burning wall cycles for it would make runs hostage to scheduler and
// steal-time noise; instead the cost is accumulated per thread and folded
// into the owning component's busy-cycle count by the runtime, where the
// profiler and the performance-projection model price it exactly like
// measured work.
// ---------------------------------------------------------------------------

inline thread_local std::uint64_t t_virtual_cycles = 0;

/// Charge `c` cycles of modeled (not executed) host work.
inline void add_virtual_cycles(std::uint64_t c) { t_virtual_cycles += c; }

/// Collect and reset this thread's accumulated virtual cycles.
inline std::uint64_t drain_virtual_cycles() {
  std::uint64_t v = t_virtual_cycles;
  t_virtual_cycles = 0;
  return v;
}

}  // namespace splitsim
