#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace splitsim {

void Summary::add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_valid_ = false;
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void Summary::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Summary::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (p <= 0.0) return sorted_.front();
  if (p >= 100.0) return sorted_.back();
  double idx = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(idx);
  double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

std::vector<CdfPoint> make_cdf(const std::vector<double>& samples, std::size_t max_points) {
  std::vector<CdfPoint> out;
  if (samples.empty()) return out;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  std::size_t n = sorted.size();
  std::size_t points = std::min(max_points, n);
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Pick evenly spaced order statistics, always including the max.
    std::size_t idx = (points == 1) ? n - 1 : i * (n - 1) / (points - 1);
    out.push_back({sorted[idx], static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return out;
}

std::string format_cdf(const std::vector<CdfPoint>& cdf, const std::string& value_unit) {
  std::ostringstream os;
  os << "value(" << value_unit << ")\tcdf\n";
  for (const auto& p : cdf) {
    os << p.value << "\t" << p.cum_prob << "\n";
  }
  return os.str();
}

double RateCounter::rate_per_sec(SimTime start, SimTime end) const {
  if (end <= start) return 0.0;
  return static_cast<double>(count_) / to_sec(end - start);
}

}  // namespace splitsim
