// Padding normalization for serialized POD values.
//
// memcpy'ing a struct copies whatever garbage its padding bytes hold, so
// two equal values can serialize to different byte images. Anything that
// hashes serialized bytes (sync::EventDigest) needs padding zeroed first.
#pragma once

namespace splitsim {

/// Zero all padding bytes inside a trivially-copyable object, recursively
/// (nested structs/arrays included), so its byte image is a pure function
/// of its value. No-op on compilers without __builtin_clear_padding.
template <typename T>
inline void clear_padding(T* obj) {
#if defined(__has_builtin)
#if __has_builtin(__builtin_clear_padding)
  __builtin_clear_padding(obj);
#else
  (void)obj;
#endif
#elif defined(__GNUC__) && __GNUC__ >= 11
  __builtin_clear_padding(obj);
#else
  (void)obj;
#endif
}

}  // namespace splitsim
