#include "util/cycles.hpp"

#include <chrono>
#include <mutex>
#include <thread>

namespace splitsim {

namespace {

double measure_cycles_per_second() {
  using clock = std::chrono::steady_clock;
  auto t0 = clock::now();
  std::uint64_t c0 = rdcycles();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::uint64_t c1 = rdcycles();
  auto t1 = clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(c1 - c0) / secs;
}

}  // namespace

double cycles_per_second() {
  static std::once_flag flag;
  static double value = 0.0;
  std::call_once(flag, [] { value = measure_cycles_per_second(); });
  return value;
}

}  // namespace splitsim
