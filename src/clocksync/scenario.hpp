// Scenario driver for the clock-synchronization case study (paper §4.3):
// a datacenter topology full of protocol-level background hosts doing bulk
// transfers, plus detailed end hosts — a clock server (NTP server or PTP
// grandmaster), CockroachDB-like replicas running chrony (+ptp4l), and DB
// clients. Used by tests, examples, and the §4.3 bench.
#pragma once

#include <string>
#include <vector>

#include "orch/instantiation.hpp"
#include "orch/verify.hpp"
#include "runtime/runner.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace splitsim::clocksync {

struct ClockSyncScenarioConfig {
  bool use_ptp = false;  ///< false: NTP; true: PTP (+TC switches, PHC refclock)

  // Topology scale; the paper's configuration is 4 aggs x 6 racks x 50
  // hosts = 1200 (tests use smaller instances).
  int n_agg = 2;
  int racks_per_agg = 2;
  int hosts_per_rack = 5;

  /// Fraction of background hosts participating in random-pair transfers.
  double bg_fraction = 1.0;
  double bg_rate_bps = 400e6;  ///< per background flow
  int db_clients = 4;
  bool run_db = true;
  int db_concurrency = 16;
  /// > 0: open-loop DB clients at this per-client op rate (fixed offered
  /// load, as in the paper's evaluation).
  double db_open_rate_per_client = 0.0;
  // `social`-style workload: read-mostly with skewed keys; hot-key write
  // locks make commit-wait the dominant serialization cost.
  double db_zipf_theta = 2.0;
  std::uint64_t db_num_keys = 100;
  double db_write_fraction = 0.5;

  SimTime ntp_poll = from_ms(200.0);
  SimTime ptp_sync_interval = from_ms(50.0);
  SimTime duration = from_sec(3.0);
  SimTime window_start = from_sec(1.5);

  std::uint64_t seed = 1;

  /// Execution choices (run mode, pool workers, named partition strategy)
  /// and profiling, forwarded to the orch::Instantiation.
  orch::ExecSpec exec;
  orch::ProfileSpec profile;

  /// Deterministic fault-injection plan, forwarded to Instantiation::faults.
  orch::FaultSpec faults;

  /// Verification: when enabled, DB clients record OpRecord histories
  /// exposed in ClockSyncScenarioResult::ops. Commit timestamps come from
  /// each replica's *disciplined system clock* (chrony-steered), so the
  /// external-consistency invariant checks the real commit-wait guarantee.
  orch::VerifySpec verify;

  /// Adaptive orchestration (partition=auto calibration, pooled epoch
  /// rebalancing, sync-interval tuning), forwarded to
  /// Instantiation::adaptive. Scheduling only; digests are unchanged.
  orch::AdaptiveSpec adaptive;

  /// Checkpoint/restart plan, forwarded to Instantiation::ckpt. The
  /// scenario stamps config_fp (when unset) from the family name and
  /// duration so a snapshot cannot resume a different workload.
  orch::CkptSpec ckpt;

  /// Deprecated: use exec.run_mode. A non-default value here still wins so
  /// existing callers keep working.
  runtime::RunMode run_mode = runtime::RunMode::kCoscheduled;
};

struct ClockSyncScenarioResult {
  // Clock accuracy bound reported by chrony on the DB servers (us).
  double mean_bound_us = 0.0;
  double max_bound_us = 0.0;
  // Ground truth |system clock - true time| on the DB servers (us).
  double mean_true_offset_us = 0.0;
  double max_true_offset_us = 0.0;
  /// Fraction of samples where the reported bound covered the true offset.
  double bound_coverage = 0.0;

  // Database results.
  double write_throughput = 0.0;  ///< ops/s in window, all clients
  double read_throughput = 0.0;
  double write_latency_mean_us = 0.0;
  double write_latency_p99_us = 0.0;
  double read_latency_mean_us = 0.0;
  double mean_commit_wait_us = 0.0;

  std::size_t components = 0;
  std::size_t simulated_hosts = 0;
  double wall_seconds = 0.0;
  runtime::EventDigest digest;  ///< cross-mode determinism digest of the run
  /// DB client operation histories (empty unless cfg.verify.enabled), in
  /// client order; value_ts = replica commit timestamp (disciplined clock).
  std::vector<orch::OpRecord> ops;
};

ClockSyncScenarioResult run_clocksync_scenario(const ClockSyncScenarioConfig& cfg);

}  // namespace splitsim::clocksync
