// NTP server and chrony-like client (paper §4.3, the "NTP configuration").
//
// All timestamps are *software* timestamps taken in application handlers on
// the drifting system clocks — so they inherit CPU queueing jitter and
// asymmetric network queueing delay, which is precisely why NTP's error
// bound lands in the microseconds while PTP's stays in the nanoseconds.
#pragma once

#include "clocksync/servo.hpp"
#include "hostsim/host.hpp"
#include "proto/ptp_ntp.hpp"
#include "util/stats.hpp"

namespace splitsim::clocksync {

/// Reference NTP server; assumed synchronized (run it with a perfect clock).
class NtpServerApp : public hostsim::HostApp {
 public:
  struct Config {
    std::uint16_t port = proto::kNtpPort;
    std::uint64_t proc_instrs = 4'000;
  };

  NtpServerApp() = default;
  explicit NtpServerApp(Config cfg) : cfg_(cfg) {}

  void start(hostsim::HostComponent& host) override;

  std::uint64_t requests() const { return requests_; }

 private:
  Config cfg_{};
  std::uint64_t requests_ = 0;
};

/// Chrony-like NTP client: periodic four-timestamp exchange, PI servo on
/// the system clock, reported error bound.
class NtpClientApp : public hostsim::HostApp {
 public:
  struct Config {
    proto::Ipv4Addr server = 0;
    std::uint16_t server_port = proto::kNtpPort;
    std::uint16_t local_port = 10123;
    SimTime poll_interval = from_sec(1.0);
    SimTime start_at = from_ms(1.0);
    PiServo::Config servo;
    ErrorBound::Config bound;
    /// Record bound/true-offset samples inside this window.
    SimTime window_start = 0;
  };

  explicit NtpClientApp(Config cfg) : cfg_(cfg), servo_(cfg.servo), bound_(cfg.bound) {}

  void start(hostsim::HostComponent& host) override;

  /// Reported bound (us) at true time `now`; chrony's "maxerror" analog.
  double bound_us(SimTime now) const { return bound_.bound_us(now); }
  /// Samples of the reported bound, one per poll, within the window.
  const Summary& bound_samples_us() const { return bound_samples_; }
  /// |true clock offset| samples (us), for validating the bound.
  const Summary& true_abs_offset_us() const { return true_offset_; }
  std::uint64_t exchanges() const { return exchanges_; }

 private:
  void poll();
  void on_reply(const proto::Packet& p, SimTime t);

  Config cfg_;
  hostsim::HostComponent* host_ = nullptr;
  PiServo servo_;
  ErrorBound bound_;
  std::uint16_t next_seq_ = 1;
  SimTime last_poll_true_ = 0;
  std::uint64_t exchanges_ = 0;
  Summary bound_samples_;
  Summary true_offset_;
};

}  // namespace splitsim::clocksync
