#include "clocksync/scenario.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "clocksync/ntp.hpp"
#include "clocksync/ptp.hpp"
#include "dcdb/dcdb.hpp"
#include "netsim/apps.hpp"
#include "orch/builders.hpp"
#include "orch/system.hpp"

namespace splitsim::clocksync {

ClockSyncScenarioResult run_clocksync_scenario(const ClockSyncScenarioConfig& cfg) {
  runtime::Simulation sim;
  orch::System sys;
  orch::Instantiation inst;
  inst.exec = orch::resolve_exec(cfg.exec, cfg.run_mode);
  inst.profile = cfg.profile;
  inst.faults = cfg.faults;
  inst.verify = cfg.verify;
  inst.adaptive = cfg.adaptive;
  inst.ckpt = cfg.ckpt;
  if (inst.ckpt.enabled() && inst.ckpt.config_fp == 0) {
    inst.ckpt.config_fp = orch::ckpt_fingerprint("clocksync", cfg.duration);
  }

  orch::DatacenterSystemParams params;
  params.n_agg = cfg.n_agg;
  params.racks_per_agg = cfg.racks_per_agg;
  params.hosts_per_rack = cfg.hosts_per_rack;
  // PTP: transparent clocks in every switch.
  params.ptp_transparent_clocks = cfg.use_ptp;

  // Background traffic: randomized host pairs performing bulk transfers.
  // Pairing is decided at System-build time over the (sorted) background
  // host names — the same deterministic shuffle the pre-orch driver applied
  // to the instantiated nodes.
  std::vector<std::string> bg;
  std::unordered_map<std::string, proto::Ipv4Addr> bg_ip;
  for (int a = 0; a < cfg.n_agg; ++a) {
    for (int r = 0; r < cfg.racks_per_agg; ++r) {
      for (int h = 0; h < cfg.hosts_per_rack; ++h) {
        std::string name =
            "h" + std::to_string(a) + "." + std::to_string(r) + "." + std::to_string(h);
        bg_ip[name] = netsim::datacenter_host_ip(a, r, h);
        bg.push_back(std::move(name));
      }
    }
  }
  std::sort(bg.begin(), bg.end());
  Rng rng(0xB6, cfg.seed);
  for (std::size_t i = bg.size(); i > 1; --i) {  // deterministic shuffle
    std::swap(bg[i - 1], bg[rng.below(i)]);
  }
  std::size_t pairs = static_cast<std::size_t>(
      static_cast<double>(bg.size()) / 2.0 * cfg.bg_fraction);
  struct BgRole {
    bool sink = false;
    netsim::OnOffUdpApp::Config onoff;  ///< set when a source
    bool source = false;
  };
  std::unordered_map<std::string, BgRole> bg_roles;
  for (std::size_t i = 0; i < pairs; ++i) {
    const std::string& src = bg[2 * i];
    const std::string& dst = bg[2 * i + 1];
    bg_roles[dst].sink = true;
    BgRole& role = bg_roles[src];
    role.source = true;
    role.onoff = netsim::OnOffUdpApp::Config{
        .dst = bg_ip[dst],
        .dst_port = 9000,
        .src_port = 9000,
        .payload_bytes = 1400,
        .rate_bps = cfg.bg_rate_bps,
        .start_at = from_us(static_cast<double>(rng.below(1000))),
        .on_period = from_ms(1.0),
        .off_period = from_ms(1.0)};
  }

  auto dcs = orch::add_datacenter(
      sys, params, [&bg_roles](int, int, int, orch::HostSpec spec) {
        auto it = bg_roles.find(spec.name);
        if (it != bg_roles.end()) {
          BgRole role = it->second;
          spec.apps = [role](orch::HostContext& ctx) {
            if (role.sink) ctx.protocol->add_app<netsim::UdpSinkApp>(9000);
            if (role.source) ctx.protocol->add_app<netsim::OnOffUdpApp>(role.onoff);
          };
        }
        return spec;
      });

  // Detailed end hosts: both DB replicas in rack (0,0) (fast in-rack
  // replication); the clock server in the farthest rack, so NTP exchanges
  // cross the whole fabric; clients spread across racks.
  proto::Ipv4Addr clock_ip =
      netsim::datacenter_host_ip(cfg.n_agg - 1, cfg.racks_per_agg - 1, cfg.hosts_per_rack);
  std::vector<proto::Ipv4Addr> server_ips;
  for (int s = 0; s < 2; ++s) {
    server_ips.push_back(netsim::datacenter_host_ip(0, 0, cfg.hosts_per_rack + s));
  }

  // DB servers, with chrony (+ptp4l under PTP). Result-extraction pointers
  // are filled in by the per-host installers.
  struct DbServer {
    NtpClientApp* ntp = nullptr;
    PtpClientApp* ptp = nullptr;
    PhcRefclockApp* refclock = nullptr;
    dcdb::DbServerApp* db = nullptr;
  };
  std::vector<DbServer> servers(2);

  // Clock server (NTP server or PTP grandmaster): its system clock (NTP)
  // or PHC (PTP) is the perfect reference.
  {
    orch::HostSpec spec;
    spec.name = "clocksrv";
    spec.seed = 1000;
    spec.tune = [](hostsim::HostConfig&, nicsim::NicConfig& nc) { nc.seed = 1000; };
    ClockConfig perfect;
    perfect.perfect = true;
    if (cfg.use_ptp) {
      spec.phc_clock = perfect;  // grandmaster PHC = reference
    } else {
      spec.clock = perfect;  // NTP server system clock = reference
    }
    spec.apps = [&cfg, server_ips](orch::HostContext& ctx) {
      if (cfg.use_ptp) {
        PtpGmApp::Config gmc;
        gmc.clients = server_ips;
        gmc.sync_interval = cfg.ptp_sync_interval;
        ctx.detailed->add_app<PtpGmApp>(gmc);
      } else {
        ctx.detailed->add_app<NtpServerApp>();
      }
    };
    orch::datacenter_attach_host(sys, dcs, params, cfg.n_agg - 1, cfg.racks_per_agg - 1,
                                 std::move(spec));
    inst.fidelity_overrides["clocksrv"] = orch::HostFidelity::kQemu;
  }

  for (int s = 0; s < 2; ++s) {
    orch::HostSpec spec;
    spec.name = "db" + std::to_string(s);
    spec.seed = static_cast<std::uint64_t>(2000 + s);
    spec.tune = [s](hostsim::HostConfig&, nicsim::NicConfig& nc) {
      nc.seed = static_cast<std::uint64_t>(2000 + s);
    };
    DbServer* self = &servers[static_cast<std::size_t>(s)];
    spec.apps = [&cfg, self, s, clock_ip, server_ips](orch::HostContext& ctx) {
      auto* host = ctx.detailed;
      if (cfg.use_ptp) {
        PtpClientApp::Config pc;
        pc.gm = clock_ip;
        pc.window_start = cfg.window_start;
        self->ptp = &host->add_app<PtpClientApp>(pc);
        self->ptp->set_phc_for_validation(&ctx.nic->phc());
        PhcRefclockApp::Config rc;
        rc.poll_interval = cfg.ptp_sync_interval;
        rc.window_start = cfg.window_start;
        self->refclock = &host->add_app<PhcRefclockApp>(rc);
        self->refclock->set_ptp(self->ptp);
      } else {
        NtpClientApp::Config nc2;
        nc2.server = clock_ip;
        nc2.poll_interval = cfg.ntp_poll;
        nc2.window_start = cfg.window_start;
        self->ntp = &host->add_app<NtpClientApp>(nc2);
      }
      if (cfg.run_db) {
        dcdb::DbServerApp::Config dbc;
        dbc.peer = server_ips[static_cast<std::size_t>(1 - s)];
        dbc.clock_bound_us = [self](SimTime now) {
          if (self->ntp != nullptr) return self->ntp->bound_us(now);
          if (self->refclock != nullptr) return self->refclock->bound_us(now);
          return 0.0;
        };
        // Commit timestamps from the disciplined system clock: external
        // consistency holds only while the daemon-reported bound above
        // covers this clock's true error.
        dbc.local_now = [host](SimTime) { return host->clock_now(); };
        self->db = &host->add_app<dcdb::DbServerApp>(dbc);
      }
    };
    orch::datacenter_attach_host(sys, dcs, params, 0, 0, std::move(spec));
    inst.fidelity_overrides["db" + std::to_string(s)] = orch::HostFidelity::kQemu;
  }

  // DB clients.
  std::vector<dcdb::DbClientApp*> db_clients;
  for (int c = 0; c < cfg.db_clients; ++c) {
    int agg = c % cfg.n_agg;
    int rack = (c / cfg.n_agg + 1) % cfg.racks_per_agg;
    orch::HostSpec spec;
    spec.name = "dbclient" + std::to_string(c);
    spec.seed = static_cast<std::uint64_t>(3000 + c);
    spec.tune = [](hostsim::HostConfig&, nicsim::NicConfig& nc) { nc.seed = 1; };
    if (cfg.run_db) {
      dcdb::DbClientApp::Config cc;
      cc.servers = server_ips;
      cc.seed = static_cast<std::uint64_t>(3000 + c);
      cc.concurrency = cfg.db_concurrency;
      cc.open_rate_per_sec = cfg.db_open_rate_per_client;
      cc.zipf_theta = cfg.db_zipf_theta;
      cc.num_keys = cfg.db_num_keys;
      cc.write_fraction = cfg.db_write_fraction;
      cc.window_start = cfg.window_start;
      cc.window_end = cfg.duration;
      cc.record_ops = cfg.verify.enabled;
      cc.max_history = cfg.verify.max_history;
      cc.actor = static_cast<std::uint32_t>(c);
      // DB writes should start only after clocks have roughly converged.
      cc.start_at = cfg.window_start / 2;
      spec.apps = [cc, &db_clients](orch::HostContext& ctx) {
        db_clients.push_back(&ctx.detailed->add_app<dcdb::DbClientApp>(cc));
      };
    }
    orch::datacenter_attach_host(sys, dcs, params, agg, rack, std::move(spec));
    inst.fidelity_overrides["dbclient" + std::to_string(c)] = orch::HostFidelity::kQemu;
  }

  if (inst.exec.partition == "auto") {
    // Calibration instantiates the system once per candidate strategy; the
    // scratch installers push dead pointers into the collectors above, so
    // resolve first and reset them before the real instantiation.
    inst.exec.partition = orch::resolve_auto_partition(sys, inst, cfg.duration);
    db_clients.clear();
  }

  auto done = orch::instantiate_system(sim, sys, inst);
  auto stats = orch::run_instantiated(sim, inst, cfg.duration);

  ClockSyncScenarioResult res;
  res.components = done.component_count;
  res.simulated_hosts = done.net.hosts.size() + 3 + static_cast<std::size_t>(cfg.db_clients);
  res.wall_seconds = stats.wall_seconds;
  res.digest = stats.digest;

  Summary bounds, truth;
  std::uint64_t covered = 0, total = 0;
  for (auto& s : servers) {
    const Summary* b = nullptr;
    const Summary* t = nullptr;
    if (s.ntp != nullptr) {
      b = &s.ntp->bound_samples_us();
      t = &s.ntp->true_abs_offset_us();
    } else if (s.refclock != nullptr) {
      b = &s.refclock->bound_samples_us();
      t = &s.refclock->true_abs_offset_us();
    }
    if (b == nullptr) continue;
    for (std::size_t i = 0; i < b->count(); ++i) {
      bounds.add(b->samples()[i]);
      if (i < t->count()) {
        truth.add(t->samples()[i]);
        ++total;
        if (t->samples()[i] <= b->samples()[i]) ++covered;
      }
    }
  }
  res.mean_bound_us = bounds.mean();
  res.max_bound_us = bounds.max();
  res.mean_true_offset_us = truth.mean();
  res.max_true_offset_us = truth.max();
  res.bound_coverage = total > 0 ? static_cast<double>(covered) / total : 0.0;

  if (cfg.run_db) {
    double win_s = to_sec(cfg.duration - cfg.window_start);
    std::uint64_t wr = 0, rd = 0;
    Summary wlat, rlat;
    for (auto* c : db_clients) {
      wr += c->window_writes();
      rd += c->window_reads();
      for (double v : c->write_latency_us().samples()) wlat.add(v);
      for (double v : c->read_latency_us().samples()) rlat.add(v);
    }
    res.write_throughput = wr / win_s;
    res.read_throughput = rd / win_s;
    res.write_latency_mean_us = wlat.mean();
    res.write_latency_p99_us = wlat.percentile(99.0);
    res.read_latency_mean_us = rlat.mean();
    Summary cw;
    for (auto& s : servers) {
      if (s.db != nullptr) {
        for (double v : s.db->commit_wait_us().samples()) cw.add(v);
      }
    }
    res.mean_commit_wait_us = cw.mean();
    if (cfg.verify.enabled) {
      for (auto* c : db_clients) {
        res.ops.insert(res.ops.end(), c->ops().begin(), c->ops().end());
      }
    }
  }
  return res;
}

}  // namespace splitsim::clocksync
