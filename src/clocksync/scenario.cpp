#include "clocksync/scenario.hpp"

#include <algorithm>
#include <vector>

#include "clocksync/ntp.hpp"
#include "clocksync/ptp.hpp"
#include "dcdb/dcdb.hpp"
#include "hostsim/endhost.hpp"
#include "netsim/apps.hpp"
#include "netsim/topology.hpp"

namespace splitsim::clocksync {

ClockSyncScenarioResult run_clocksync_scenario(const ClockSyncScenarioConfig& cfg) {
  runtime::Simulation sim;
  netsim::Datacenter dc =
      netsim::make_datacenter(cfg.n_agg, cfg.racks_per_agg, cfg.hosts_per_rack);

  // Detailed end hosts: both DB replicas in rack (0,0) (fast in-rack
  // replication); the clock server in the farthest rack, so NTP exchanges
  // cross the whole fabric; clients spread across racks.
  int clock_node = netsim::datacenter_add_external(dc, cfg.n_agg - 1,
                                                   cfg.racks_per_agg - 1, "clocksrv");
  int db0_node = netsim::datacenter_add_external(dc, 0, 0, "db0");
  int db1_node = netsim::datacenter_add_external(dc, 0, 0, "db1");
  (void)clock_node;
  (void)db0_node;
  (void)db1_node;
  std::vector<std::string> client_names;
  for (int c = 0; c < cfg.db_clients; ++c) {
    int agg = c % cfg.n_agg;
    int rack = (c / cfg.n_agg + 1) % cfg.racks_per_agg;
    std::string name = "dbclient" + std::to_string(c);
    netsim::datacenter_add_external(dc, agg, rack, name);
    client_names.push_back(name);
  }

  auto inst = netsim::instantiate(sim, dc.topo);

  // PTP: transparent clocks in every switch.
  if (cfg.use_ptp) {
    for (auto& [name, sw] : inst.switches) {
      sw->set_app(std::make_unique<PtpTransparentClockApp>());
    }
  }

  // Background traffic: randomized host pairs performing bulk transfers.
  Rng rng(0xB6, cfg.seed);
  std::vector<netsim::HostNode*> bg;
  for (auto& [name, host] : inst.hosts) bg.push_back(host);
  std::sort(bg.begin(), bg.end(), [](auto* a, auto* b) { return a->name() < b->name(); });
  // Deterministic shuffle.
  for (std::size_t i = bg.size(); i > 1; --i) {
    std::swap(bg[i - 1], bg[rng.below(i)]);
  }
  std::size_t pairs = static_cast<std::size_t>(
      static_cast<double>(bg.size()) / 2.0 * cfg.bg_fraction);
  for (std::size_t i = 0; i < pairs; ++i) {
    netsim::HostNode* src = bg[2 * i];
    netsim::HostNode* dst = bg[2 * i + 1];
    dst->add_app<netsim::UdpSinkApp>(9000);
    src->add_app<netsim::OnOffUdpApp>(netsim::OnOffUdpApp::Config{
        .dst = dst->ip(),
        .dst_port = 9000,
        .src_port = 9000,
        .payload_bytes = 1400,
        .rate_bps = cfg.bg_rate_bps,
        .start_at = from_us(static_cast<double>(rng.below(1000))),
        .on_period = from_ms(1.0),
        .off_period = from_ms(1.0)});
  }

  // Clock server.
  hostsim::HostConfig clock_hc;
  clock_hc.seed = 1000;
  nicsim::NicConfig clock_nc;
  clock_nc.seed = 1000;
  if (cfg.use_ptp) {
    clock_nc.phc_clock.perfect = true;  // grandmaster PHC = reference
  } else {
    clock_hc.clock.perfect = true;  // NTP server system clock = reference
  }
  auto clock_eh =
      hostsim::attach_end_host(sim, inst.external_ports["clocksrv"], clock_hc, clock_nc);

  // DB servers, with chrony (+ptp4l under PTP).
  struct DbServer {
    hostsim::EndHost eh;
    NtpClientApp* ntp = nullptr;
    PtpClientApp* ptp = nullptr;
    PhcRefclockApp* refclock = nullptr;
    dcdb::DbServerApp* db = nullptr;
  };
  std::vector<DbServer> servers(2);
  std::vector<proto::Ipv4Addr> server_ips;
  std::vector<proto::Ipv4Addr> ptp_clients;
  for (int s = 0; s < 2; ++s) {
    std::string name = "db" + std::to_string(s);
    hostsim::HostConfig hc;
    hc.seed = 2000 + s;
    nicsim::NicConfig nc;
    nc.seed = 2000 + s;
    servers[s].eh = hostsim::attach_end_host(sim, inst.external_ports[name], hc, nc);
    server_ips.push_back(servers[s].eh.host->ip());
    ptp_clients.push_back(servers[s].eh.host->ip());
  }
  for (int s = 0; s < 2; ++s) {
    auto* host = servers[s].eh.host;
    if (cfg.use_ptp) {
      PtpClientApp::Config pc;
      pc.gm = clock_eh.host->ip();
      pc.window_start = cfg.window_start;
      servers[s].ptp = &host->add_app<PtpClientApp>(pc);
      servers[s].ptp->set_phc_for_validation(&servers[s].eh.nic->phc());
      PhcRefclockApp::Config rc;
      rc.poll_interval = cfg.ptp_sync_interval;
      rc.window_start = cfg.window_start;
      servers[s].refclock = &host->add_app<PhcRefclockApp>(rc);
      servers[s].refclock->set_ptp(servers[s].ptp);
    } else {
      NtpClientApp::Config nc2;
      nc2.server = clock_eh.host->ip();
      nc2.poll_interval = cfg.ntp_poll;
      nc2.window_start = cfg.window_start;
      servers[s].ntp = &host->add_app<NtpClientApp>(nc2);
    }
    if (cfg.run_db) {
      dcdb::DbServerApp::Config dbc;
      dbc.peer = server_ips[1 - s];
      DbServer* self = &servers[s];
      dbc.clock_bound_us = [self](SimTime now) {
        if (self->ntp != nullptr) return self->ntp->bound_us(now);
        if (self->refclock != nullptr) return self->refclock->bound_us(now);
        return 0.0;
      };
      servers[s].db = &host->add_app<dcdb::DbServerApp>(dbc);
    }
  }
  if (cfg.use_ptp) {
    PtpGmApp::Config gmc;
    gmc.clients = ptp_clients;
    gmc.sync_interval = cfg.ptp_sync_interval;
    clock_eh.host->add_app<PtpGmApp>(gmc);
  } else {
    clock_eh.host->add_app<NtpServerApp>();
  }

  // DB clients.
  std::vector<dcdb::DbClientApp*> db_clients;
  for (int c = 0; c < cfg.db_clients && cfg.run_db; ++c) {
    hostsim::HostConfig hc;
    hc.seed = 3000 + c;
    auto eh = hostsim::attach_end_host(sim, inst.external_ports[client_names[c]], hc);
    dcdb::DbClientApp::Config cc;
    cc.servers = server_ips;
    cc.seed = 3000 + c;
    cc.concurrency = cfg.db_concurrency;
    cc.open_rate_per_sec = cfg.db_open_rate_per_client;
    cc.zipf_theta = cfg.db_zipf_theta;
    cc.num_keys = cfg.db_num_keys;
    cc.write_fraction = cfg.db_write_fraction;
    cc.window_start = cfg.window_start;
    cc.window_end = cfg.duration;
    // DB writes should start only after clocks have roughly converged.
    cc.start_at = cfg.window_start / 2;
    db_clients.push_back(&eh.host->add_app<dcdb::DbClientApp>(cc));
  }

  auto stats = sim.run(cfg.duration, cfg.run_mode);

  ClockSyncScenarioResult res;
  res.components = sim.components().size();
  res.simulated_hosts = inst.hosts.size() + 3 + cfg.db_clients;
  res.wall_seconds = stats.wall_seconds;
  res.digest = stats.digest;

  Summary bounds, truth;
  std::uint64_t covered = 0, total = 0;
  for (auto& s : servers) {
    const Summary* b = nullptr;
    const Summary* t = nullptr;
    if (s.ntp != nullptr) {
      b = &s.ntp->bound_samples_us();
      t = &s.ntp->true_abs_offset_us();
    } else if (s.refclock != nullptr) {
      b = &s.refclock->bound_samples_us();
      t = &s.refclock->true_abs_offset_us();
    }
    if (b == nullptr) continue;
    for (std::size_t i = 0; i < b->count(); ++i) {
      bounds.add(b->samples()[i]);
      if (i < t->count()) {
        truth.add(t->samples()[i]);
        ++total;
        if (t->samples()[i] <= b->samples()[i]) ++covered;
      }
    }
  }
  res.mean_bound_us = bounds.mean();
  res.max_bound_us = bounds.max();
  res.mean_true_offset_us = truth.mean();
  res.max_true_offset_us = truth.max();
  res.bound_coverage = total > 0 ? static_cast<double>(covered) / total : 0.0;

  if (cfg.run_db) {
    double win_s = to_sec(cfg.duration - cfg.window_start);
    std::uint64_t wr = 0, rd = 0;
    Summary wlat, rlat;
    for (auto* c : db_clients) {
      wr += c->window_writes();
      rd += c->window_reads();
      for (double v : c->write_latency_us().samples()) wlat.add(v);
      for (double v : c->read_latency_us().samples()) rlat.add(v);
    }
    res.write_throughput = wr / win_s;
    res.read_throughput = rd / win_s;
    res.write_latency_mean_us = wlat.mean();
    res.write_latency_p99_us = wlat.percentile(99.0);
    res.read_latency_mean_us = rlat.mean();
    Summary cw;
    for (auto& s : servers) {
      if (s.db != nullptr) {
        for (double v : s.db->commit_wait_us().samples()) cw.add(v);
      }
    }
    res.mean_commit_wait_us = cw.mean();
  }
  return res;
}

}  // namespace splitsim::clocksync
