#include "clocksync/ntp.hpp"

namespace splitsim::clocksync {

void NtpServerApp::start(hostsim::HostComponent& host) {
  host.udp_bind(cfg_.port, [this, &host](const proto::Packet& p, SimTime) {
    auto req = p.app.as<proto::NtpFrame>();
    if (req.is_response) return;
    ++requests_;
    // t2: server clock when the request reached the daemon (software ts).
    SimTime t2 = host.clock_now();
    host.exec(cfg_.proc_instrs, [this, &host, p, req, t2]() mutable {
      proto::NtpFrame resp = req;
      resp.is_response = 1;
      resp.t2 = t2;
      resp.t3 = host.clock_now();  // t3: just before handing to the stack
      proto::AppData d;
      d.store(resp);
      host.udp_send(p.src_ip, p.src_port, cfg_.port, d);
    });
  });
}

void NtpClientApp::start(hostsim::HostComponent& host) {
  host_ = &host;
  host.udp_bind(cfg_.local_port,
                [this](const proto::Packet& p, SimTime t) { on_reply(p, t); });
  host.kernel().schedule_at(cfg_.start_at, [this] { poll(); });
}

void NtpClientApp::poll() {
  proto::NtpFrame req;
  req.seq = next_seq_++;
  req.t1 = host_->clock_now();  // software transmit timestamp
  proto::AppData d;
  d.store(req);
  host_->udp_send(cfg_.server, cfg_.server_port, cfg_.local_port, d);
  host_->kernel().schedule_in(cfg_.poll_interval, [this] { poll(); });
}

void NtpClientApp::on_reply(const proto::Packet& p, SimTime now_true) {
  auto f = p.app.as<proto::NtpFrame>();
  if (!f.is_response) return;
  SimTime t4 = host_->clock_now();  // software receive timestamp
  // Standard NTP offset/delay from the four timestamps (client − server).
  double t1 = static_cast<double>(f.t1), t2 = static_cast<double>(f.t2);
  double t3 = static_cast<double>(f.t3), t4d = static_cast<double>(t4);
  double offset_ps = ((t1 - t2) + (t4d - t3)) / 2.0;
  double delay_ps = (t4d - t1) - (t3 - t2);
  double offset_us = offset_ps / timeunit::us;
  double delay_us = delay_ps / timeunit::us;

  double interval_s = last_poll_true_ == 0 ? to_sec(cfg_.poll_interval)
                                           : to_sec(now_true - last_poll_true_);
  last_poll_true_ = now_true;
  ++exchanges_;

  auto action = servo_.update(offset_us, interval_s);
  auto& clk = host_->clock();
  if (action.step) {
    clk.step(now_true, action.step_ps);
  } else {
    clk.slew(now_true, action.slew_ppm);
  }
  bound_.on_measurement(now_true, action.step ? 0.0 : offset_us, delay_us);

  if (now_true >= cfg_.window_start) {
    bound_samples_.add(bound_.bound_us(now_true));
    true_offset_.add(std::abs(static_cast<double>(clk.offset_ps(now_true))) / timeunit::us);
  }
}

}  // namespace splitsim::clocksync
