// Clock discipline building blocks shared by the NTP and PTP daemons:
// a PI servo (chrony/ptp4l style) and an error-bound tracker modeling
// chrony's reported maximum clock error (offset + delay/2 + dispersion
// growing with time since the last measurement).
#pragma once

#include <cmath>
#include <cstdint>

#include "util/time.hpp"

namespace splitsim::clocksync {

class PiServo {
 public:
  struct Config {
    double kp = 0.7;
    double ki = 0.3;
    /// Offsets above this are corrected by stepping instead of slewing.
    double step_threshold_us = 1000.0;
  };

  struct Action {
    bool step = false;
    std::int64_t step_ps = 0;  ///< apply with DriftClock::step
    double slew_ppm = 0.0;     ///< apply with DriftClock::slew (absolute)
  };

  PiServo() = default;
  explicit PiServo(Config cfg) : cfg_(cfg) {}

  /// `offset_us` = (disciplined clock − reference), measured now;
  /// `interval_s` = time since the previous measurement.
  Action update(double offset_us, double interval_s) {
    Action a;
    if (std::abs(offset_us) > cfg_.step_threshold_us) {
      a.step = true;
      a.step_ps = static_cast<std::int64_t>(-offset_us * timeunit::us);
      integral_ppm_ = 0.0;
      return a;
    }
    if (interval_s <= 0.0) interval_s = 1e-3;
    double p = offset_us / interval_s;  // ppm that cancels the offset in one interval
    integral_ppm_ += cfg_.ki * p;
    a.slew_ppm = -(cfg_.kp * p + integral_ppm_);
    return a;
  }

  double integral_ppm() const { return integral_ppm_; }

 private:
  Config cfg_{};
  double integral_ppm_ = 0.0;
};

/// Tracks the reported maximum clock error ("clock accuracy bound").
class ErrorBound {
 public:
  struct Config {
    /// Residual frequency uncertainty: how fast the bound grows between
    /// measurements (chrony: skew estimate).
    double skew_ppm = 1.0;
    /// Jitter EWMA gain.
    double jitter_gain = 0.2;
  };

  ErrorBound() = default;
  explicit ErrorBound(Config cfg) : cfg_(cfg) {}

  /// Record a measurement: estimated offset and measured path delay (both
  /// microseconds) at true/sim time `now`.
  void on_measurement(SimTime now, double offset_us, double delay_us) {
    double abs_off = std::abs(offset_us);
    jitter_us_ = jitter_us_ == 0.0 ? abs_off
                                   : (1.0 - cfg_.jitter_gain) * jitter_us_ +
                                         cfg_.jitter_gain * abs_off;
    base_us_ = abs_off + delay_us / 2.0 + jitter_us_;
    last_update_ = now;
    valid_ = true;
  }

  /// Reported bound at time `now` (grows with time since last measurement).
  double bound_us(SimTime now) const {
    if (!valid_) return 1e9;  // unsynchronized
    double elapsed_s = to_sec(now - last_update_);
    return base_us_ + cfg_.skew_ppm * elapsed_s;
  }

  bool valid() const { return valid_; }
  double jitter_us() const { return jitter_us_; }

 private:
  Config cfg_{};
  bool valid_ = false;
  double base_us_ = 0.0;
  double jitter_us_ = 0.0;
  SimTime last_update_ = 0;
};

}  // namespace splitsim::clocksync
