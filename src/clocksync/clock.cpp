#include "clocksync/clock.hpp"

namespace splitsim::clocksync {

DriftClock::DriftClock(ClockConfig cfg, std::uint64_t seed_stream) {
  if (!cfg.perfect) {
    Rng rng(0x10CC10CC, seed_stream);
    drift_ppm_ = rng.uniform(-cfg.max_drift_ppm, cfg.max_drift_ppm);
    double off_us = rng.uniform(-cfg.max_initial_offset_us, cfg.max_initial_offset_us);
    base_local_ = off_us * static_cast<double>(timeunit::us);
  }
}

SimTime DriftClock::read(SimTime true_now) const {
  double elapsed = static_cast<double>(true_now - base_true_);
  double local = base_local_ + elapsed * (1.0 + freq_error_ppm() * 1e-6);
  if (local < 0.0) local = 0.0;
  return static_cast<SimTime>(local);
}

std::int64_t DriftClock::offset_ps(SimTime true_now) const {
  return static_cast<std::int64_t>(read(true_now)) - static_cast<std::int64_t>(true_now);
}

void DriftClock::rebase(SimTime true_now) {
  double elapsed = static_cast<double>(true_now - base_true_);
  base_local_ += elapsed * (1.0 + freq_error_ppm() * 1e-6);
  base_true_ = true_now;
}

void DriftClock::slew(SimTime true_now, double adj_ppm) {
  rebase(true_now);
  adj_ppm_ = adj_ppm;
}

void DriftClock::step(SimTime true_now, std::int64_t delta_ps) {
  rebase(true_now);
  base_local_ += static_cast<double>(delta_ps);
  if (base_local_ < 0.0) base_local_ = 0.0;
}

}  // namespace splitsim::clocksync
