// PTP (ptp4l analog) with hardware timestamping and transparent clocks
// (paper §4.3, the "PTP configuration").
//
// The grandmaster's NIC PHC is the time reference. Sync/FollowUp and
// DelayReq/DelayResp exchanges use NIC hardware timestamps; transparent-
// clock switches accumulate queue-residence corrections into the frames.
// A PtpClientApp disciplines its NIC's PHC through PCI register writes; a
// PhcRefclockApp (chrony with a PHC reference clock) then disciplines the
// host system clock against the PHC.
#pragma once

#include <map>
#include <vector>

#include "clocksync/servo.hpp"
#include "hostsim/host.hpp"
#include "netsim/switch.hpp"
#include "proto/ptp_ntp.hpp"
#include "util/stats.hpp"

namespace splitsim::clocksync {

/// Grandmaster: periodic Sync + FollowUp (with hardware TX timestamp) to
/// each configured client; answers DelayReq with the hardware RX timestamp.
class PtpGmApp : public hostsim::HostApp {
 public:
  struct Config {
    std::vector<proto::Ipv4Addr> clients;
    SimTime sync_interval = from_ms(125.0);
    SimTime start_at = from_ms(1.0);
    std::uint16_t port = proto::kPtpPort;
    std::uint64_t proc_instrs = 3'000;
  };

  explicit PtpGmApp(Config cfg) : cfg_(std::move(cfg)) {}

  void start(hostsim::HostComponent& host) override;

  std::uint64_t syncs_sent() const { return syncs_; }

 private:
  void send_syncs();

  Config cfg_;
  hostsim::HostComponent* host_ = nullptr;
  std::uint16_t seq_ = 0;
  std::uint64_t syncs_ = 0;
  /// Outstanding Sync transmissions awaiting a hardware TX timestamp.
  std::map<std::uint64_t, std::pair<proto::Ipv4Addr, std::uint16_t>> pending_tx_;
};

/// Client side of ptp4l: disciplines the local NIC's PHC.
class PtpClientApp : public hostsim::HostApp {
 public:
  struct Config {
    proto::Ipv4Addr gm = 0;
    std::uint16_t port = proto::kPtpPort;
    /// Send a DelayReq after every N Syncs.
    int dreq_every = 4;
    /// PTP estimates are hardware-accurate, so step aggressively while far
    /// off (ptp4l steps when unlocked) and slew once close.
    PiServo::Config servo{.kp = 0.7, .ki = 0.3, .step_threshold_us = 5.0};
    ErrorBound::Config bound{.skew_ppm = 0.5, .jitter_gain = 0.2};
    SimTime window_start = 0;
  };

  explicit PtpClientApp(Config cfg) : cfg_(cfg), servo_(cfg.servo), bound_(cfg.bound) {}

  void start(hostsim::HostComponent& host) override;

  double bound_us(SimTime now) const { return bound_.bound_us(now); }
  const Summary& bound_samples_us() const { return bound_samples_; }
  const Summary& offset_estimates_us() const { return offset_est_; }
  std::uint64_t syncs_received() const { return syncs_rx_; }
  bool path_delay_valid() const { return have_path_delay_; }
  double path_delay_us() const { return path_delay_us_; }

  /// Optional, for validation in single-threaded runs only: lets the app
  /// record the PHC's true offset alongside each estimate.
  void set_phc_for_validation(const DriftClock* phc) { phc_validation_ = phc; }
  const Summary& true_phc_abs_offset_us() const { return true_offset_; }

 private:
  void on_frame(const proto::Packet& p, SimTime now_true);
  void on_tx_ts(const proto::PciTxTimestamp& rep);

  Config cfg_;
  hostsim::HostComponent* host_ = nullptr;
  PiServo servo_;
  ErrorBound bound_;
  const DriftClock* phc_validation_ = nullptr;

  // Two-step sync state.
  std::uint16_t sync_seq_ = 0;
  SimTime sync_t2_ = 0;         ///< client PHC HW RX timestamp of Sync
  SimTime sync_corr_ = 0;       ///< TC correction of that Sync
  bool sync_pending_ = false;

  // Delay measurement state.
  bool have_path_delay_ = false;
  double path_delay_us_ = 0.0;
  double m2c_ps_last_ = 0.0;  ///< last sync's (t2 - t1 - correction)
  bool m2c_valid_ = false;
  std::uint64_t dreq_pkt_id_ = 0;
  SimTime dreq_t3_ = 0;  ///< client PHC HW TX timestamp of DelayReq
  bool dreq_t3_valid_ = false;

  SimTime last_update_true_ = 0;
  std::uint64_t syncs_rx_ = 0;
  int syncs_since_dreq_ = 0;
  Summary bound_samples_;
  Summary offset_est_;
  Summary true_offset_;
};

/// chrony with a PHC reference clock: polls the NIC PHC over PCI and
/// disciplines the host system clock to it. The reported system-clock bound
/// composes the refclock uncertainty with the PTP client's PHC bound.
class PhcRefclockApp : public hostsim::HostApp {
 public:
  struct Config {
    SimTime poll_interval = from_ms(125.0);
    SimTime start_at = from_ms(10.0);
    PiServo::Config servo{.kp = 0.7, .ki = 0.3, .step_threshold_us = 5.0};
    ErrorBound::Config bound{.skew_ppm = 0.5, .jitter_gain = 0.2};
    SimTime window_start = 0;
  };

  explicit PhcRefclockApp(Config cfg) : cfg_(cfg), servo_(cfg.servo), bound_(cfg.bound) {}

  void start(hostsim::HostComponent& host) override;

  /// PTP client whose bound is composed into the reported system bound.
  void set_ptp(const PtpClientApp* ptp) { ptp_ = ptp; }

  double bound_us(SimTime now) const {
    double b = bound_.bound_us(now);
    if (ptp_ != nullptr) b += ptp_->bound_us(now);
    return b;
  }
  const Summary& bound_samples_us() const { return bound_samples_; }
  const Summary& true_abs_offset_us() const { return true_offset_; }

 private:
  void poll();

  Config cfg_;
  hostsim::HostComponent* host_ = nullptr;
  PiServo servo_;
  ErrorBound bound_;
  const PtpClientApp* ptp_ = nullptr;
  SimTime last_update_true_ = 0;
  Summary bound_samples_;
  Summary true_offset_;
};

/// Transparent clock for netsim switches: adds the estimated queue wait of
/// the chosen output port to PTP event frames' correction field.
class PtpTransparentClockApp : public netsim::SwitchApp {
 public:
  bool process(netsim::SwitchNode& sw, proto::Packet& p, std::size_t in_port) override;

  std::uint64_t frames_corrected() const { return corrected_; }

 private:
  std::uint64_t corrected_ = 0;
};

}  // namespace splitsim::clocksync
