// Drifting hardware clocks (paper §4.3).
//
// Every detailed host has a system clock and every NIC a PTP hardware clock
// (PHC); each runs at a slightly wrong, per-device frequency. Clock
// synchronization daemons (NTP/chrony, ptp4l) discipline them with slews
// and steps through the servo interface below. True simulation time is the
// ground truth against which error bounds are validated.
#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace splitsim::clocksync {

struct ClockConfig {
  /// Absolute frequency error is drawn uniformly from [-max, +max] ppm.
  double max_drift_ppm = 30.0;
  /// Initial offset drawn uniformly from [-max, +max] microseconds.
  double max_initial_offset_us = 100.0;
  /// True clock: zero drift, zero offset (reference servers).
  bool perfect = false;
};

class DriftClock {
 public:
  DriftClock(ClockConfig cfg, std::uint64_t seed_stream);

  /// Local clock reading at true time `true_now`.
  SimTime read(SimTime true_now) const;

  /// Signed offset (local - true) in picoseconds at `true_now`.
  std::int64_t offset_ps(SimTime true_now) const;

  /// Actual current frequency error in ppm (intrinsic drift + servo slew).
  double freq_error_ppm() const { return drift_ppm_ + adj_ppm_; }
  double intrinsic_drift_ppm() const { return drift_ppm_; }

  // ---- servo interface -------------------------------------------------
  /// Adjust the correction frequency (absolute, replaces previous slew).
  void slew(SimTime true_now, double adj_ppm);
  /// Step the clock by `delta_ps` (positive = forward).
  void step(SimTime true_now, std::int64_t delta_ps);

 private:
  void rebase(SimTime true_now);

  double drift_ppm_ = 0.0;
  double adj_ppm_ = 0.0;
  SimTime base_true_ = 0;
  double base_local_ = 0.0;  // double: sub-ps accumulation across rebasing
};

}  // namespace splitsim::clocksync
