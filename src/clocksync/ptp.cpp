#include "clocksync/ptp.hpp"

#include <cmath>
#include <cstring>

namespace splitsim::clocksync {

// ------------------------------------------------------------------- GM ----

void PtpGmApp::start(hostsim::HostComponent& host) {
  host_ = &host;
  host.udp_bind(cfg_.port, [this](const proto::Packet& p, SimTime) {
    auto f = p.app.as<proto::PtpFrame>();
    if (f.type != proto::PtpMsgType::kDelayReq) return;
    // The GM NIC hardware-stamped the DelayReq arrival with the GM PHC.
    proto::PtpFrame resp;
    resp.type = proto::PtpMsgType::kDelayResp;
    resp.seq = f.seq;
    resp.origin_ts = f.hw_rx_ts;
    resp.correction = f.correction;
    proto::AppData d;
    d.store(resp);
    auto src = p.src_ip;
    auto sport = p.src_port;
    host_->exec(cfg_.proc_instrs, [this, src, sport, d] {
      host_->udp_send(src, proto::kPtpPort, cfg_.port, d);
    });
  });
  host.on_tx_timestamp = [this](const proto::PciTxTimestamp& rep) {
    auto it = pending_tx_.find(rep.pkt_id);
    if (it == pending_tx_.end()) return;
    auto [client, seq] = it->second;
    pending_tx_.erase(it);
    // Two-step sync: FollowUp carries the precise hardware TX timestamp.
    proto::PtpFrame fu;
    fu.type = proto::PtpMsgType::kFollowUp;
    fu.seq = seq;
    fu.origin_ts = rep.phc_ts;
    proto::AppData d;
    d.store(fu);
    host_->udp_send(client, proto::kPtpPort, cfg_.port, d);
  };
  host.kernel().schedule_at(cfg_.start_at, [this] { send_syncs(); });
}

void PtpGmApp::send_syncs() {
  ++seq_;
  for (auto client : cfg_.clients) {
    proto::PtpFrame sync;
    sync.type = proto::PtpMsgType::kSync;
    sync.seq = seq_;
    proto::AppData d;
    d.store(sync);
    std::uint64_t id = host_->udp_send(client, proto::kPtpPort, cfg_.port, d);
    pending_tx_[id] = {client, seq_};
    ++syncs_;
  }
  host_->kernel().schedule_in(cfg_.sync_interval, [this] { send_syncs(); });
}

// --------------------------------------------------------------- client ----

void PtpClientApp::start(hostsim::HostComponent& host) {
  host_ = &host;
  host.udp_bind(cfg_.port, [this](const proto::Packet& p, SimTime t) { on_frame(p, t); });
  host.on_tx_timestamp = [this](const proto::PciTxTimestamp& rep) { on_tx_ts(rep); };
}

void PtpClientApp::on_frame(const proto::Packet& p, SimTime now_true) {
  auto f = p.app.as<proto::PtpFrame>();
  switch (f.type) {
    case proto::PtpMsgType::kSync:
      sync_seq_ = f.seq;
      sync_t2_ = f.hw_rx_ts;  // client PHC hardware timestamp
      sync_corr_ = f.correction;
      sync_pending_ = true;
      ++syncs_rx_;
      return;
    case proto::PtpMsgType::kFollowUp: {
      if (!sync_pending_ || f.seq != sync_seq_) return;
      sync_pending_ = false;
      // offset = t2 - t1 - correction - path_delay  (client PHC - GM PHC)
      double t1 = static_cast<double>(f.origin_ts);
      double t2 = static_cast<double>(sync_t2_);
      double corr = static_cast<double>(sync_corr_);
      double master_to_client_ps = t2 - t1 - corr;
      m2c_ps_last_ = master_to_client_ps;
      m2c_valid_ = true;
      if (have_path_delay_) {
        double offset_us = master_to_client_ps / timeunit::us - path_delay_us_;
        offset_est_.add(offset_us);

        double interval_s = last_update_true_ == 0
                                ? 0.125
                                : to_sec(now_true - last_update_true_);
        last_update_true_ = now_true;
        auto action = servo_.update(offset_us, interval_s);
        if (action.step) {
          host_->write_nic_reg(proto::NicReg::kPhcStep,
                               static_cast<std::uint64_t>(action.step_ps));
        } else {
          std::uint64_t bits;
          double ppm = action.slew_ppm;
          std::memcpy(&bits, &ppm, sizeof bits);
          host_->write_nic_reg(proto::NicReg::kPhcAdjPpm, bits);
        }
        // A step removes the measured offset; the residual drives the bound.
        bound_.on_measurement(now_true, action.step ? 0.0 : offset_us, 0.0);
        if (now_true >= cfg_.window_start) {
          bound_samples_.add(bound_.bound_us(now_true));
          if (phc_validation_ != nullptr) {
            true_offset_.add(
                std::abs(static_cast<double>(phc_validation_->offset_ps(now_true))) /
                timeunit::us);
          }
        }
      }
      // Kick off a delay measurement as configured (and always for the
      // first exchanges, until a path delay exists).
      if (!have_path_delay_ || ++syncs_since_dreq_ >= cfg_.dreq_every) {
        syncs_since_dreq_ = 0;
        proto::PtpFrame dreq;
        dreq.type = proto::PtpMsgType::kDelayReq;
        dreq.seq = f.seq;
        proto::AppData d;
        d.store(dreq);
        dreq_t3_valid_ = false;
        dreq_pkt_id_ = host_->udp_send(cfg_.gm, proto::kPtpPort, cfg_.port, d);
      }
      return;
    }
    case proto::PtpMsgType::kDelayResp: {
      if (!dreq_t3_valid_ || !m2c_valid_) return;
      // path_delay = ((t2 - t1 - corrS) + (t4 - t3 - corrD)) / 2
      double t4 = static_cast<double>(f.origin_ts);
      double t3 = static_cast<double>(dreq_t3_);
      double corr_d = static_cast<double>(f.correction);
      double client_to_master_ps = t4 - t3 - corr_d;
      double pd_ps = (m2c_ps_last_ + client_to_master_ps) / 2.0;
      if (pd_ps < 0) pd_ps = 0;
      path_delay_us_ = pd_ps / timeunit::us;
      have_path_delay_ = true;
      return;
    }
    default:
      return;
  }
}

void PtpClientApp::on_tx_ts(const proto::PciTxTimestamp& rep) {
  if (rep.pkt_id == dreq_pkt_id_) {
    dreq_t3_ = rep.phc_ts;
    dreq_t3_valid_ = true;
  }
}

// ------------------------------------------------------------- refclock ----

void PhcRefclockApp::start(hostsim::HostComponent& host) {
  host_ = &host;
  host.kernel().schedule_at(cfg_.start_at, [this] { poll(); });
}

void PhcRefclockApp::poll() {
  SimTime send_local = host_->clock_now();
  host_->read_nic_reg(
      proto::NicReg::kPhcTime,
      [this, send_local](std::uint64_t phc_value, SimTime now_true) {
        SimTime recv_local = host_->clock_now();
        double mid_local = (static_cast<double>(send_local) + static_cast<double>(recv_local)) / 2.0;
        double offset_us = (mid_local - static_cast<double>(phc_value)) / timeunit::us;
        double pci_rtt_us =
            (static_cast<double>(recv_local) - static_cast<double>(send_local)) / timeunit::us;

        double interval_s = last_update_true_ == 0 ? to_sec(cfg_.poll_interval)
                                                   : to_sec(now_true - last_update_true_);
        last_update_true_ = now_true;
        auto action = servo_.update(offset_us, interval_s);
        auto& clk = host_->clock();
        if (action.step) {
          clk.step(now_true, action.step_ps);
        } else {
          clk.slew(now_true, action.slew_ppm);
        }
        bound_.on_measurement(now_true, action.step ? 0.0 : offset_us, pci_rtt_us);
        if (now_true >= cfg_.window_start) {
          bound_samples_.add(bound_us(now_true));
          true_offset_.add(std::abs(static_cast<double>(clk.offset_ps(now_true))) /
                           timeunit::us);
        }
      });
  host_->kernel().schedule_in(cfg_.poll_interval, [this] { poll(); });
}

// ---------------------------------------------------------------- TC -------

bool PtpTransparentClockApp::process(netsim::SwitchNode& sw, proto::Packet& p,
                                     std::size_t /*in_port*/) {
  if (p.l4 != proto::L4Proto::kUdp || p.dst_port != proto::kPtpPort) return false;
  auto f = p.app.as<proto::PtpFrame>();
  if (f.type != proto::PtpMsgType::kSync && f.type != proto::PtpMsgType::kDelayReq) {
    return false;
  }
  std::size_t out = sw.lookup(p);
  if (out == SIZE_MAX) return false;
  auto& dev = sw.dev(out);
  // Residence-time correction: exact egress waiting time — remaining
  // serialization of the in-flight frame plus the queued bytes ahead. The
  // frame's own serialization is path delay, not residence, and is
  // excluded (hardware TCs timestamp at start of transmission).
  SimTime wait = dev.pending_wait(sw.now());
  if (wait > 0) {
    f.correction += wait;
    p.app.store(f);
    ++corrected_;
  }
  return false;
}

}  // namespace splitsim::clocksync
