#!/usr/bin/env python3
"""Validate SplitSim observability artifacts.

Usage:
    validate_trace.py TRACE_JSON [METRICS_JSON]

Checks that TRACE_JSON is well-formed Chrome trace-event JSON as Perfetto
expects it:
  * top-level object with a "traceEvents" array
  * every event has a "ph"; spans ("X") have ts/dur >= 0 and a name
  * flow events pair up ("f" events carry "bp":"e"). A flow begin without
    an end is tolerated in bounded numbers (messages in flight when the
    simulation ended); an end without a begin only when the exporter's
    otherData reports drop-oldest truncation ("dropped" > 0)
  * counter events ("C") carry a numeric args.value
  * every referenced (pid, tid) has a thread_name metadata record — track
    ids are interned per process, so a tid only means something together
    with its shard's pid in a merged multi-process trace

When METRICS_JSON is given, also checks it holds at least one snapshot with
a non-empty counters or gauges object.

Exits 0 on success, 1 with a message on the first violation. Stdlib only.
"""

import json
import sys
from collections import Counter


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing traceEvents object")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents empty")

    flow_begins = Counter()
    flow_ends = Counter()
    flow_begin_pid = {}
    named_tracks = set()
    used_tracks = set()
    pids = set()
    spans = 0
    cross_flows = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph is None:
            fail(f"{path}: event {i} has no ph")
        if ph == "M":
            if e.get("name") == "thread_name":
                named_tracks.add((e.get("pid"), e.get("tid")))
            continue
        used_tracks.add((e.get("pid"), e.get("tid")))
        pids.add(e.get("pid"))
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{path}: event {i} bad ts {ts!r}")
        if ph == "X":
            spans += 1
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{path}: span {i} bad dur {dur!r}")
            if not e.get("name"):
                fail(f"{path}: span {i} unnamed")
        elif ph == "C":
            value = e.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"{path}: counter {i} bad args.value {value!r}")
        elif ph == "s":
            flow_begins[e.get("id")] += 1
            flow_begin_pid.setdefault(e.get("id"), e.get("pid"))
        elif ph == "f":
            if e.get("bp") != "e":
                fail(f"{path}: flow end {i} missing bp:e")
            flow_ends[e.get("id")] += 1
            if flow_begin_pid.get(e.get("id"), e.get("pid")) != e.get("pid"):
                cross_flows += 1

    if spans == 0:
        fail(f"{path}: no complete spans recorded")
    dropped = doc.get("otherData", {}).get("dropped", 0)
    matched = set(flow_begins) & set(flow_ends)
    begin_only = set(flow_begins) - matched
    end_only = set(flow_ends) - matched
    for fid in matched:
        if flow_ends[fid] != flow_begins[fid]:
            fail(f"{path}: flow {fid} has {flow_begins[fid]} begins "
                 f"but {flow_ends[fid]} ends")
    if end_only and dropped == 0:
        fail(f"{path}: {len(end_only)} flow ends without begins in a "
             f"complete (no-drop) trace (e.g. {next(iter(end_only))})")
    total_flows = sum(flow_begins.values()) + sum(flow_ends.values())
    unpaired = len(begin_only) + len(end_only)
    if total_flows and unpaired > max(64, total_flows // 10):
        fail(f"{path}: {unpaired} unpaired flow ids out of "
             f"{total_flows} flow events")
    unnamed = {t for t in used_tracks - named_tracks if t[0] != 0}
    if unnamed:
        fail(f"{path}: (pid,tid) without thread_name metadata: "
             f"{sorted(unnamed, key=repr)[:5]}")
    print(f"validate_trace: {path}: OK "
          f"({len(events)} events, {spans} spans, {sum(flow_begins.values())} flows, "
          f"{len(pids)} pids, {cross_flows} cross-process flows)")


def validate_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    snaps = doc.get("snapshots")
    if not isinstance(snaps, list) or not snaps:
        fail(f"{path}: no snapshots")
    last = snaps[-1]
    if not last.get("counters") and not last.get("gauges"):
        fail(f"{path}: final snapshot has no counters or gauges")
    for s in snaps:
        ws = s.get("wall_seconds")
        if not isinstance(ws, (int, float)) or ws < 0:
            fail(f"{path}: snapshot bad wall_seconds {ws!r}")
    print(f"validate_trace: {path}: OK ({len(snaps)} snapshots, "
          f"{len(last.get('gauges', {}))} gauges in final)")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    validate_trace(sys.argv[1])
    if len(sys.argv) > 2:
        validate_metrics(sys.argv[2])


if __name__ == "__main__":
    main()
