// splitsim_launch: run a registered scenario as multiple OS processes (or
// with swapped cross-channel transports) and check digest parity against
// the single-process threaded reference run.
//
//   splitsim_launch --scenario kv-small --processes --transport shm \
//       --out-dir /tmp/run --verify-digest
//
// Exit codes: 0 success, 1 run/usage failure, 2 digest mismatch.
//
// The launcher is the CI `proc-smoke` entry point: it executes the same
// scenario once in-process (threaded, heap rings) and once under the
// requested deployment (forked process groups over shm segments or
// localhost socket trunks, or a single-process transport swap), then
// requires the EventDigests to be bit-identical. --expect-peer-death flips
// the contract: a child is killed mid-run (SPLITSIM_DEBUG_KILL) and the
// launcher asserts the failure surfaces as a typed transport error while
// the surviving process still writes its artifacts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "mcheck/scenarios.hpp"
#include "runtime/error.hpp"
#include "sync/digest.hpp"

using namespace splitsim;

namespace {

struct Options {
  std::string scenario = "kv-small";
  std::string partition;         // named partition strategy ("" = scenario default)
  std::string transport = "inproc";
  bool processes = false;
  bool verify_digest = false;
  bool expect_peer_death = false;
  std::string kill_after;        // "<rank>:<ms>" for SPLITSIM_DEBUG_KILL
  std::string out_dir = "splitsim-launch-out";
  double duration_ms = 0.0;      // 0 = scenario default
  bool trace = false;            // record per-process shards, merge in parent
  std::uint64_t metrics_ms = 0;  // metrics snapshot period (0 = off)
  std::uint64_t progress_ms = 0; // aggregated progress line period (0 = off)
  double checkpoint_every_ms = 0.0;  // boundary snapshot period (0 = off)
  std::string checkpoint_dir;        // "" = <out-dir>/ckpt
  std::string resume_from;           // snapshot file or directory ("" = fresh)
  std::string inject_throw;          // "COMP:MS" killer fault for resume tests
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: splitsim_launch --scenario kv-small|clocksync-small|dcdb-small\n"
      "  [--partition NAME] [--transport inproc|shm|socket] [--processes]\n"
      "  [--duration-ms N] [--out-dir DIR] [--verify-digest]\n"
      "  [--trace] [--metrics MS] [--progress MS]\n"
      "  [--checkpoint-every MS] [--checkpoint-dir DIR] [--resume-from PATH]\n"
      "  [--inject-throw COMP:MS]\n"
      "  [--expect-peer-death --kill-after RANK:MS]\n"
      "\n"
      "Checkpointing: --checkpoint-every writes boundary snapshots under\n"
      "--checkpoint-dir; --resume-from re-instantiates from the newest\n"
      "complete snapshot and continues (elastically: the resumed run may use\n"
      "a different partition/transport/process count). With --verify-digest\n"
      "the resumed run's digest must match the uninterrupted reference.\n"
      "--inject-throw kills the first run with a deterministic model fault\n"
      "at the given simulated time (a resume strips the killer fault).\n");
  std::exit(code);
}

struct RunOutcome {
  bool completed = false;
  sync::EventDigest digest;
  std::string error;
  runtime::ErrorKind error_kind = runtime::ErrorKind::kModelError;
};

/// One scenario run under the given exec choices; never throws.
/// `with_ckpt` gates the checkpoint/resume/fault flags so the reference run
/// stays a plain uninterrupted run of the same scenario.
template <typename Cfg, typename RunFn>
RunOutcome run_once(Cfg cfg, const Options& opt, const orch::ExecSpec& exec,
                    const std::string& out_dir, bool with_ckpt, RunFn&& run) {
  cfg.exec = exec;
  if (opt.duration_ms > 0) cfg.duration = from_ms(opt.duration_ms);
  cfg.profile.log_dir = out_dir;
  cfg.profile.trace = opt.trace;
  cfg.profile.metrics_period_ms = opt.metrics_ms;
  cfg.profile.progress_period_ms = opt.progress_ms;
  if (with_ckpt) {
    if (opt.checkpoint_every_ms > 0) cfg.ckpt.every = from_ms(opt.checkpoint_every_ms);
    cfg.ckpt.dir = opt.checkpoint_dir;
    cfg.ckpt.resume_from = opt.resume_from;
    if (!opt.inject_throw.empty()) {
      auto colon = opt.inject_throw.rfind(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 >= opt.inject_throw.size()) {
        std::fprintf(stderr, "splitsim_launch: --inject-throw wants COMP:MS, got '%s'\n",
                     opt.inject_throw.c_str());
        std::exit(1);
      }
      orch::ThrowFaultRule rule;
      rule.component = opt.inject_throw.substr(0, colon);
      rule.at = from_ms(std::stod(opt.inject_throw.substr(colon + 1)));
      rule.message = "injected kill for checkpoint/resume";
      cfg.faults.throws.push_back(rule);
    }
  }
  RunOutcome out;
  try {
    auto res = run(cfg);
    out.completed = true;
    out.digest = res.digest;
  } catch (const runtime::SimulationError& e) {
    out.error = e.what();
    out.error_kind = e.kind();
    if (e.stats() != nullptr) out.digest = e.stats()->digest;
  }
  return out;
}

RunOutcome run_scenario(const Options& opt, const orch::ExecSpec& exec,
                        const std::string& out_dir, bool with_ckpt) {
  if (opt.scenario == "kv-small") {
    return run_once(mcheck::kv_small_config(), opt, exec, out_dir, with_ckpt,
                    [](const kv::ScenarioConfig& c) { return kv::run_kv_scenario(c); });
  }
  if (opt.scenario == "clocksync-small") {
    return run_once(mcheck::clocksync_small_config(), opt, exec, out_dir, with_ckpt,
                    [](const clocksync::ClockSyncScenarioConfig& c) {
                      return clocksync::run_clocksync_scenario(c);
                    });
  }
  if (opt.scenario == "dcdb-small") {
    return run_once(mcheck::dcdb_small_config(), opt, exec, out_dir, with_ckpt,
                    [](const dcdb::DcdbScenarioConfig& c) { return dcdb::run_dcdb_scenario(c); });
  }
  std::fprintf(stderr, "splitsim_launch: unknown scenario '%s'\n", opt.scenario.c_str());
  std::exit(1);
}

void print_digest(const char* label, const sync::EventDigest& d) {
  std::printf("%s: digest xor=%016llx sum=%016llx count=%llu\n", label,
              static_cast<unsigned long long>(d.fold_xor),
              static_cast<unsigned long long>(d.fold_sum),
              static_cast<unsigned long long>(d.count));
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "splitsim_launch: %s requires a value\n", flag);
        usage(1);
      }
      return argv[++i];
    };
    if (a == "--scenario") opt.scenario = need("--scenario");
    else if (a == "--partition") opt.partition = need("--partition");
    else if (a == "--transport") opt.transport = need("--transport");
    else if (a == "--processes") opt.processes = true;
    else if (a == "--verify-digest") opt.verify_digest = true;
    else if (a == "--expect-peer-death") opt.expect_peer_death = true;
    else if (a == "--kill-after") opt.kill_after = need("--kill-after");
    else if (a == "--out-dir") opt.out_dir = need("--out-dir");
    else if (a == "--duration-ms") opt.duration_ms = std::stod(need("--duration-ms"));
    else if (a == "--trace") opt.trace = true;
    else if (a == "--metrics") opt.metrics_ms = std::stoull(need("--metrics"));
    else if (a == "--progress") opt.progress_ms = std::stoull(need("--progress"));
    else if (a == "--checkpoint-every")
      opt.checkpoint_every_ms = std::stod(need("--checkpoint-every"));
    else if (a == "--checkpoint-dir") opt.checkpoint_dir = need("--checkpoint-dir");
    else if (a == "--resume-from") opt.resume_from = need("--resume-from");
    else if (a == "--inject-throw") opt.inject_throw = need("--inject-throw");
    else if (a == "--help" || a == "-h") usage(0);
    else {
      std::fprintf(stderr, "splitsim_launch: unknown flag '%s'\n", a.c_str());
      usage(1);
    }
  }

  orch::ExecSpec exec;
  exec.run_mode = runtime::RunMode::kThreaded;
  exec.partition = opt.partition;
  exec.transport = opt.transport;
  exec.processes = opt.processes;

  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);

  if (opt.expect_peer_death) {
    if (opt.kill_after.empty()) {
      std::fprintf(stderr, "splitsim_launch: --expect-peer-death needs --kill-after\n");
      return 1;
    }
    setenv("SPLITSIM_DEBUG_KILL", opt.kill_after.c_str(), 1);
    RunOutcome out = run_scenario(opt, exec, opt.out_dir, /*with_ckpt=*/true);
    if (out.completed) {
      std::fprintf(stderr, "FAIL: run completed although rank %s was killed\n",
                   opt.kill_after.c_str());
      return 1;
    }
    if (out.error_kind != runtime::ErrorKind::kTransport) {
      std::fprintf(stderr, "FAIL: expected a transport error, got: %s\n",
                   out.error.c_str());
      return 1;
    }
    std::printf("peer death surfaced as: %s\n", out.error.c_str());
    // Teardown-ordering check: the merged summary was still written from
    // the salvaged partial stats.
    if (!std::filesystem::exists(opt.out_dir + "/summary.json")) {
      std::fprintf(stderr, "FAIL: merged summary.json missing after peer death\n");
      return 1;
    }
    std::printf("OK: transport failure attributed, artifacts salvaged\n");
    return 0;
  }

  RunOutcome target = run_scenario(opt, exec, opt.out_dir, /*with_ckpt=*/true);
  if (!target.completed) {
    if (!opt.inject_throw.empty() &&
        target.error_kind == runtime::ErrorKind::kModelError) {
      // The injected killer fault is the expected ending of this leg; its
      // point is the snapshots it leaves behind for a --resume-from run.
      std::printf("injected fault surfaced as: %s\n", target.error.c_str());
      const std::string ckpt_dir =
          opt.checkpoint_dir.empty() ? opt.out_dir + "/ckpt" : opt.checkpoint_dir;
      bool have_snapshot = false;
      std::error_code dec;
      for (const auto& e : std::filesystem::directory_iterator(ckpt_dir, dec)) {
        if (e.path().extension() == ".ckpt") have_snapshot = true;
      }
      if (dec || !have_snapshot) {
        std::fprintf(stderr, "FAIL: no snapshot in '%s' to resume from\n",
                     ckpt_dir.c_str());
        return 1;
      }
      std::printf("OK: fault injected, snapshots available under %s\n", ckpt_dir.c_str());
      return 0;
    }
    std::fprintf(stderr, "FAIL: run errored: %s\n", target.error.c_str());
    return 1;
  }
  print_digest("run", target.digest);

  if (opt.verify_digest) {
    orch::ExecSpec ref = exec;
    ref.transport = "inproc";
    ref.processes = false;
    // The reference is the same scenario uninterrupted: no checkpointing,
    // no resume, no injected fault — what the checkpointed/resumed run must
    // reproduce bit-identically.
    RunOutcome reference =
        run_scenario(opt, ref, opt.out_dir + "/reference", /*with_ckpt=*/false);
    if (!reference.completed) {
      std::fprintf(stderr, "FAIL: reference run errored: %s\n", reference.error.c_str());
      return 1;
    }
    print_digest("reference (threaded, inproc)", reference.digest);
    if (!(target.digest == reference.digest)) {
      std::fprintf(stderr, "FAIL: digest mismatch between transports\n");
      return 2;
    }
    std::printf("OK: digests bit-identical\n");
  }
  return 0;
}
