// splitsim_tracemerge: fold per-process Chrome-trace shards into one
// Perfetto-loadable trace with cross-process flow arrows and a synthetic
// critical-path track.
//
//   splitsim_tracemerge --out merged.json shard0.json shard1.json ...
//   splitsim_tracemerge --dir /tmp/run --out /tmp/run/trace.json
//
// --dir discovers <dir>/proc-*/trace.json, the layout run_multiprocess
// leaves behind (which also performs this merge itself; the tool exists for
// re-merging with different options and for shards gathered from other
// machines). Exit codes: 0 success, 1 usage/merge failure.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/merge.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: splitsim_tracemerge [--out PATH] [--dir RUNDIR] [--epochs N]\n"
               "  [--no-critical-path-track] [shard.json ...]\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "trace.json";
  std::string dir;
  std::vector<std::string> shards;
  splitsim::obs::MergeOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto need = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "splitsim_tracemerge: %s requires a value\n", flag);
        usage(1);
      }
      return argv[++i];
    };
    if (a == "--out") out = need("--out");
    else if (a == "--dir") dir = need("--dir");
    else if (a == "--epochs") opts.critical_path_epochs = std::stoull(need("--epochs"));
    else if (a == "--no-critical-path-track") opts.emit_critical_path_track = false;
    else if (a == "--help" || a == "-h") usage(0);
    else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "splitsim_tracemerge: unknown flag '%s'\n", a.c_str());
      usage(1);
    } else {
      shards.push_back(a);
    }
  }

  if (!dir.empty()) {
    std::error_code ec;
    for (std::size_t rank = 0;; ++rank) {
      std::string p = dir + "/proc-" + std::to_string(rank) + "/trace.json";
      if (!std::filesystem::exists(p, ec)) break;
      shards.push_back(std::move(p));
    }
  }
  if (shards.empty()) {
    std::fprintf(stderr, "splitsim_tracemerge: no shards (give paths or --dir)\n");
    usage(1);
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());

  try {
    splitsim::obs::MergeResult r = splitsim::obs::merge_trace_shards(shards, out, opts);
    std::printf("merged %zu shards -> %s\n", r.shards, out.c_str());
    std::printf("events=%zu recorded=%llu dropped=%llu\n", r.events,
                static_cast<unsigned long long>(r.recorded),
                static_cast<unsigned long long>(r.dropped));
    std::printf("flow_pairs=%zu cross_process_flow_pairs=%zu\n", r.flow_pairs,
                r.cross_process_flow_pairs);
    if (!r.critical_path.limiter.empty()) {
      std::printf("critical path limiter: %s (%.1f us attributed wait)\n",
                  r.critical_path.limiter.c_str(), r.critical_path.total_wait_us);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "splitsim_tracemerge: %s\n", e.what());
    return 1;
  }
  return 0;
}
