// splitsim_mcheck: command-line front end for the mini model checker.
//
//   splitsim_mcheck list
//       Print the registered verify scenarios and their invariants.
//
//   splitsim_mcheck explore --scenario=NAME [--mode=M] [--max-runs=N]
//                           [--max-wall=SECONDS] [--out-dir=DIR]
//                           [--fail-on-violation]
//       Enumerate the scenario's fault lattice under the budget, check
//       invariants, shrink failures, and write reproducer JSON artifacts to
//       --out-dir. Exits 2 when the *clean* (no-fault) run violates an
//       invariant — the scenario itself is broken. Exits 1 with
//       --fail-on-violation when any violation was found.
//
//   splitsim_mcheck replay --scenario=NAME [--mode=M] <fault flags>
//                          [--expect-digest=0xHEX]
//       Execute one run under the given fault flags (the encoding emitted in
//       reproducer artifacts), print its digest and any violations, and exit
//       nonzero when the digest does not match --expect-digest. Determinism
//       makes this bit-exact in every run mode.
//
//   splitsim_mcheck chaos --scenario=NAME --seed=N [--mode=M]
//       Draw one random fault spec from the scenario's lattice (deterministic
//       in the seed), run it, and gate on the *liveness* invariant only —
//       random faults may legitimately break protocol invariants, but the
//       runtime must always finish or fail attributed. On failure prints the
//       seed plus a minimized one-line reproducer and exits 1.
//
// Fault flags: --fault-seed=S  --fault-chan=SUBSTR:DROP:DUP:DELAYP:DELAY_NS
//              --fault-throw=COMP:AT_NS[:MSG]  --fault-stall=COMP:AT_NS:BATCHES
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mcheck/explorer.hpp"
#include "mcheck/scenarios.hpp"
#include "runtime/runner.hpp"

using namespace splitsim;

namespace {

struct CommonArgs {
  std::string scenario;
  std::string mode = "coscheduled";
  std::string partition;
  unsigned pool_workers = 0;
};

bool value_of(const std::string& arg, const char* prefix, std::string* out) {
  std::size_t n = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(n);
  return true;
}

runtime::RunMode parse_mode(const std::string& s) {
  if (s == "threaded") return runtime::RunMode::kThreaded;
  if (s == "coscheduled") return runtime::RunMode::kCoscheduled;
  if (s == "pooled") return runtime::RunMode::kPooled;
  std::fprintf(stderr, "splitsim_mcheck: unknown --mode '%s' "
                       "(threaded | coscheduled | pooled)\n", s.c_str());
  std::exit(64);
}

/// Parse a flag shared by every subcommand; returns false if unrecognized.
bool parse_common(CommonArgs& c, const std::string& arg) {
  std::string v;
  if (value_of(arg, "--scenario=", &c.scenario)) return true;
  if (value_of(arg, "--mode=", &c.mode)) return true;
  if (value_of(arg, "--partition=", &c.partition)) return true;
  if (value_of(arg, "--workers=", &v)) {
    c.pool_workers = static_cast<unsigned>(std::stoul(v));
    return true;
  }
  return false;
}

const mcheck::VerifyScenario& require_scenario(const CommonArgs& c) {
  if (c.scenario.empty()) {
    std::fprintf(stderr, "splitsim_mcheck: --scenario=NAME is required "
                         "(see `splitsim_mcheck list`)\n");
    std::exit(64);
  }
  const mcheck::VerifyScenario* sc = mcheck::find_verify_scenario(c.scenario);
  if (sc == nullptr) {
    std::fprintf(stderr, "splitsim_mcheck: unknown scenario '%s' "
                         "(see `splitsim_mcheck list`)\n", c.scenario.c_str());
    std::exit(64);
  }
  return *sc;
}

orch::ExecSpec exec_of(const CommonArgs& c) {
  orch::ExecSpec exec;
  exec.run_mode = parse_mode(c.mode);
  exec.pool_workers = c.pool_workers;
  exec.partition = c.partition;
  return exec;
}

int cmd_list() {
  for (const auto& sc : mcheck::verify_scenarios()) {
    std::printf("%-16s %s\n", sc.name.c_str(), sc.description.c_str());
    std::printf("%-16s invariants:", "");
    for (const auto& inv : sc.invariants) std::printf(" %s", inv.c_str());
    std::printf("\n");
  }
  return 0;
}

int cmd_explore(const std::vector<std::string>& args) {
  CommonArgs c;
  mcheck::Budget budget;
  std::string out_dir = "splitsim-out/mcheck";
  bool fail_on_violation = false;
  for (const auto& a : args) {
    std::string v;
    if (parse_common(c, a)) continue;
    if (value_of(a, "--max-runs=", &v)) {
      budget.max_runs = std::stoul(v);
    } else if (value_of(a, "--max-wall=", &v)) {
      budget.max_wall_seconds = std::stod(v);
    } else if (value_of(a, "--out-dir=", &v)) {
      out_dir = v;
    } else if (a == "--fail-on-violation") {
      fail_on_violation = true;
    } else {
      std::fprintf(stderr, "splitsim_mcheck explore: unknown flag '%s'\n", a.c_str());
      return 64;
    }
  }
  const mcheck::VerifyScenario& sc = require_scenario(c);

  mcheck::Explorer ex(mcheck::bind_scenario(sc, exec_of(c)), sc.lattice, budget,
                      {.scenario = sc.name, .run_mode = c.mode, .artifact_dir = out_dir});
  for (auto& inv : mcheck::scenario_invariants(sc)) ex.add_invariant(std::move(inv));
  mcheck::ExploreResult res = ex.explore();

  std::printf("scenario        %s (mode=%s)\n", sc.name.c_str(), c.mode.c_str());
  std::printf("clean digest    0x%016" PRIx64 "  (%s)\n", res.clean_digest,
              res.clean_ok ? "all invariants hold" : "VIOLATED — scenario broken");
  std::printf("runs            %zu (budget %zu%s)\n", res.runs, budget.max_runs,
              res.budget_exhausted ? ", exhausted" : "");
  std::printf("unique digests  %zu (%zu runs deduplicated)\n", res.unique_digests,
              res.deduped);
  std::printf("wall seconds    %.2f\n", res.wall_seconds);
  std::printf("violations      %zu\n", res.reproducers.size());
  for (std::size_t i = 0; i < res.reproducers.size(); ++i) {
    const mcheck::Reproducer& r = res.reproducers[i];
    std::printf("\n[%zu] %s: %s\n", i, r.violation.invariant.c_str(),
                r.violation.detail.c_str());
    std::printf("    replay: %s\n", r.replay_cmd.c_str());
    if (!r.json_path.empty()) std::printf("    artifact: %s\n", r.json_path.c_str());
  }
  if (!res.clean_ok) return 2;
  return fail_on_violation && !res.reproducers.empty() ? 1 : 0;
}

int cmd_replay(const std::vector<std::string>& args) {
  CommonArgs c;
  orch::FaultSpec spec;
  std::uint64_t expect_digest = 0;
  bool have_expect = false;
  for (const auto& a : args) {
    std::string v;
    if (parse_common(c, a)) continue;
    if (mcheck::parse_spec_arg(spec, a)) continue;
    if (value_of(a, "--expect-digest=", &v)) {
      expect_digest = std::stoull(v, nullptr, 0);
      have_expect = true;
    } else {
      std::fprintf(stderr, "splitsim_mcheck replay: unknown flag '%s'\n", a.c_str());
      return 64;
    }
  }
  const mcheck::VerifyScenario& sc = require_scenario(c);

  mcheck::Observation obs = sc.run(spec, exec_of(c));
  std::printf("scenario  %s (mode=%s)\n", sc.name.c_str(), c.mode.c_str());
  std::printf("spec      %s\n", mcheck::spec_to_args(spec).c_str());
  std::printf("digest    0x%016" PRIx64 "\n", obs.digest);
  if (obs.errored) {
    std::printf("errored   [%s] %s\n", obs.error_component.c_str(), obs.error.c_str());
  }
  for (auto& inv : mcheck::scenario_invariants(sc)) {
    if (auto v = inv->check(obs)) {
      std::printf("violation %s: %s\n", v->invariant.c_str(), v->detail.c_str());
    }
  }
  if (have_expect && obs.digest != expect_digest) {
    std::printf("MISMATCH  expected 0x%016" PRIx64 " — run did not reproduce\n",
                expect_digest);
    return 1;
  }
  if (have_expect) std::printf("match     digest reproduced bit-identically\n");
  return 0;
}

int cmd_chaos(const std::vector<std::string>& args) {
  CommonArgs c;
  std::uint64_t seed = 1;
  std::size_t shrink_budget = 40;
  for (const auto& a : args) {
    std::string v;
    if (parse_common(c, a)) continue;
    if (value_of(a, "--seed=", &v)) {
      seed = std::stoull(v);
    } else if (value_of(a, "--shrink-budget=", &v)) {
      shrink_budget = std::stoul(v);
    } else {
      std::fprintf(stderr, "splitsim_mcheck chaos: unknown flag '%s'\n", a.c_str());
      return 64;
    }
  }
  const mcheck::VerifyScenario& sc = require_scenario(c);

  orch::FaultSpec spec = mcheck::random_fault_spec(seed, sc.lattice);
  mcheck::Observation obs = sc.run(spec, exec_of(c));
  std::printf("scenario  %s (mode=%s) seed=%" PRIu64 "\n", sc.name.c_str(), c.mode.c_str(),
              seed);
  std::printf("spec      %s\n", mcheck::spec_to_args(spec).c_str());
  std::printf("digest    0x%016" PRIx64 "\n", obs.digest);

  // Gate on liveness only: random faults may legitimately break protocol
  // invariants (that is what explore hunts for); chaos hunts runtime bugs —
  // hangs, unattributed failures — which liveness alone captures.
  auto liveness = mcheck::make_liveness_invariant();
  auto v = liveness->check(obs);
  if (!v) {
    std::printf("ok        run %s with attribution intact\n",
                obs.completed ? "completed" : "failed");
    return 0;
  }
  std::printf("FAILED    %s: %s\n", v->invariant.c_str(), v->detail.c_str());
  mcheck::Explorer ex(mcheck::bind_scenario(sc, exec_of(c)), sc.lattice,
                      {.max_runs = shrink_budget},
                      {.scenario = sc.name, .run_mode = c.mode, .artifact_dir = ""});
  ex.add_invariant(mcheck::make_liveness_invariant());
  orch::FaultSpec small = ex.shrink(spec, v->invariant);
  std::printf("reproduce seed=%" PRIu64 " splitsim_mcheck replay --scenario=%s --mode=%s %s\n",
              seed, sc.name.c_str(), c.mode.c_str(), mcheck::spec_to_args(small).c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: splitsim_mcheck <list | explore | replay | chaos> [flags]\n"
                 "       (see the header comment in tools/splitsim_mcheck.cpp)\n");
    return 64;
  }
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "explore") return cmd_explore(args);
    if (cmd == "replay") return cmd_replay(args);
    if (cmd == "chaos") return cmd_chaos(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "splitsim_mcheck: %s\n", e.what());
    return 70;
  }
  std::fprintf(stderr, "splitsim_mcheck: unknown command '%s'\n", cmd.c_str());
  return 64;
}
